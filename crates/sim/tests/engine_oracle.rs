//! Differential property tests for the incremental contention engine.
//!
//! The [`Engine`] maintains per-SE share aggregates and only re-rates
//! the kernels whose masks intersect the CUs a mutation touched. The
//! [`ReferenceEngine`] here does what the pre-optimization engine did:
//! re-derive every kernel's rate from scratch via
//! [`contention::kernel_rate`] after every mutation. Random
//! dispatch/advance/complete/fail programs must leave the two engines
//! *bitwise* identical — same rates, same busy counters, same
//! next-completion instants — or the incremental caches have drifted
//! from the model they claim to memoize.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use krisp_sim::{
    contention, CuId, CuMask, Engine, GpuTopology, KernelId, SeId, SimDuration, SimTime,
};

/// A from-scratch recomputation of the fluid contention model — the
/// oracle the incremental engine is checked against.
struct RefKernel {
    id: KernelId,
    mask: CuMask,
    parallelism: u16,
    bandwidth_floor: f64,
    remaining: f64,
    rate: f64,
}

struct ReferenceEngine {
    topo: GpuTopology,
    gamma: f64,
    residents: Vec<u16>,
    actives: Vec<RefKernel>,
}

impl ReferenceEngine {
    fn new(topo: GpuTopology, gamma: f64) -> ReferenceEngine {
        ReferenceEngine {
            topo,
            gamma,
            residents: vec![0; topo.total_cus() as usize],
            actives: Vec::new(),
        }
    }

    fn recompute_rates(&mut self) {
        for k in &mut self.actives {
            k.rate = contention::kernel_rate(
                &k.mask,
                k.parallelism,
                k.bandwidth_floor,
                &self.residents,
                &self.topo,
                self.gamma,
            );
        }
    }

    fn dispatch(&mut self, id: KernelId, work: f64, parallelism: u16, floor: f64, mask: CuMask) {
        for cu in &mask {
            self.residents[usize::from(cu)] += 1;
        }
        self.actives.push(RefKernel {
            id,
            mask,
            parallelism,
            bandwidth_floor: floor,
            remaining: work,
            rate: 0.0,
        });
        self.recompute_rates();
    }

    fn advance(&mut self, dt: SimDuration) {
        let ns = dt.as_nanos() as f64;
        for k in &mut self.actives {
            k.remaining = (k.remaining - k.rate * ns).max(0.0);
        }
    }

    fn next_completion(&self, now: SimTime) -> Option<(SimTime, KernelId)> {
        self.actives
            .iter()
            .map(|k| {
                let ns = if k.remaining <= 0.0 {
                    0
                } else {
                    (k.remaining / k.rate).ceil() as u64
                };
                (now + SimDuration::from_nanos(ns), k.id)
            })
            .min()
    }

    // swap_remove mirrors the engine's removal so the two active lists
    // stay in the same order and rate *sums* compare bitwise too.
    fn complete(&mut self, id: KernelId) {
        let idx = self
            .actives
            .iter()
            .position(|k| k.id == id)
            .expect("oracle and engine agree on in-flight ids");
        let k = self.actives.swap_remove(idx);
        for cu in &k.mask {
            self.residents[usize::from(cu)] -= 1;
        }
        self.recompute_rates();
    }

    fn fail_cus(&mut self, failed: CuMask, fallback: CuMask) {
        let mut changed = false;
        for i in 0..self.actives.len() {
            let lost = self.actives[i].mask & failed;
            if lost.is_empty() {
                continue;
            }
            changed = true;
            for cu in &lost {
                self.residents[usize::from(cu)] -= 1;
            }
            let survived = self.actives[i].mask - failed;
            if survived.is_empty() {
                for cu in &fallback {
                    self.residents[usize::from(cu)] += 1;
                }
                self.actives[i].mask = fallback;
            } else {
                self.actives[i].mask = survived;
            }
        }
        if changed {
            self.recompute_rates();
        }
    }

    fn busy_cus(&self) -> u32 {
        self.residents.iter().filter(|&&r| r > 0).count() as u32
    }

    fn busy_ses(&self) -> u32 {
        self.topo
            .ses()
            .filter(|&se| {
                self.topo
                    .cus_in_se(se)
                    .any(|cu| self.residents[usize::from(cu)] > 0)
            })
            .count() as u32
    }

    fn total_service(&self) -> f64 {
        contention::total_service(self.actives.iter().map(|k| k.rate))
    }
}

/// One randomized host action against both engines.
#[derive(Debug, Clone)]
enum Op {
    Dispatch {
        start: u8,
        len: u8,
        work_us: u16,
        parallelism: u16,
        floor_pct: u8,
    },
    Advance {
        dt_us: u16,
    },
    CompleteNext,
    FailCu {
        cu: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The dispatch arm appears twice to bias programs toward deeper
    // co-residency (the vendored prop_oneof! has no weight syntax).
    prop_oneof![
        (0u8..60, 1u8..=30, 10u16..5_000, 1u16..=60, 0u8..=50).prop_map(
            |(start, len, work_us, parallelism, floor_pct)| Op::Dispatch {
                start,
                len,
                work_us,
                parallelism,
                floor_pct,
            }
        ),
        (30u8..60, 1u8..=30, 10u16..5_000, 1u16..=60, 0u8..=50).prop_map(
            |(start, len, work_us, parallelism, floor_pct)| Op::Dispatch {
                start,
                len,
                work_us,
                parallelism,
                floor_pct,
            }
        ),
        (1u16..5_000).prop_map(|dt_us| Op::Advance { dt_us }),
        Just(Op::CompleteNext),
        (0u8..60).prop_map(|cu| Op::FailCu { cu }),
    ]
}

fn check(eng: &Engine, reference: &ReferenceEngine, now: SimTime) -> Result<(), TestCaseError> {
    prop_assert_eq!(eng.active_count(), reference.actives.len());
    for k in &reference.actives {
        let rate = eng.rate_of(k.id);
        prop_assert!(rate.is_some());
        prop_assert_eq!(rate.unwrap().to_bits(), k.rate.to_bits());
    }
    prop_assert_eq!(eng.busy_cus(), reference.busy_cus());
    prop_assert_eq!(eng.busy_ses(), reference.busy_ses());
    prop_assert_eq!(eng.next_completion(now), reference.next_completion(now));
    prop_assert_eq!(
        eng.total_service().to_bits(),
        reference.total_service().to_bits()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_engine_matches_from_scratch_reference(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let topo = GpuTopology::MI50;
        let mut eng = Engine::new(topo);
        let mut reference = ReferenceEngine::new(topo, eng.sharing_penalty());
        let mut now = SimTime::ZERO;
        let mut failed = CuMask::new();
        let full = CuMask::full(&topo);
        for op in ops {
            match op {
                Op::Dispatch { start, len, work_us, parallelism, floor_pct } => {
                    let mut mask = CuMask::new();
                    for cu in start..(start + len).min(60) {
                        mask.set(CuId(cu as u16));
                    }
                    let mask = mask - failed;
                    if mask.is_empty() {
                        continue;
                    }
                    let work = f64::from(work_us) * 1_000.0;
                    let floor = f64::from(floor_pct) / 100.0;
                    let id = eng
                        .dispatch(work, parallelism, floor, mask)
                        .expect("mask is non-empty");
                    reference.dispatch(id, work, parallelism, floor, mask);
                }
                Op::Advance { dt_us } => {
                    let dt = SimDuration::from_micros(u64::from(dt_us));
                    eng.advance(dt);
                    reference.advance(dt);
                    now += dt;
                }
                Op::CompleteNext => {
                    if let Some((t, id)) = eng.next_completion(now) {
                        let dt = t.saturating_since(now);
                        eng.advance(dt);
                        reference.advance(dt);
                        now = t;
                        eng.complete(id);
                        reference.complete(id);
                    }
                }
                Op::FailCu { cu } => {
                    let cu = CuId(u16::from(cu));
                    if failed.contains(cu) {
                        continue;
                    }
                    let mut f = CuMask::new();
                    f.set(cu);
                    let fallback = full - failed - f;
                    if fallback.is_empty() {
                        continue;
                    }
                    failed.set(cu);
                    eng.fail_cus(f, fallback);
                    reference.fail_cus(f, fallback);
                }
            }
            check(&eng, &reference, now)?;
        }
    }

    /// The edge case the dirty-CU skip exists for: kernels on disjoint
    /// shader engines never re-rate each other. A dispatch rates only
    /// the new kernel (+1), a disjoint completion re-rates nobody (+0),
    /// and every established rate survives bitwise.
    #[test]
    fn disjoint_masks_skip_re_rating(
        work_us in proptest::collection::vec(10u16..5_000, 2..=4),
    ) {
        let topo = GpuTopology::MI50;
        let mut eng = Engine::new(topo);
        let mut ids: Vec<KernelId> = Vec::new();
        for (se, &w) in work_us.iter().enumerate() {
            let mask: CuMask = topo.cus_in_se(SeId(se as u8)).collect();
            let before: Vec<(KernelId, u64)> = ids
                .iter()
                .map(|&id| (id, eng.rate_of(id).unwrap().to_bits()))
                .collect();
            let rerates = eng.rerate_count();
            let id = eng
                .dispatch(f64::from(w) * 1_000.0, 15, 0.0, mask)
                .expect("SE mask is non-empty");
            prop_assert_eq!(eng.rerate_count(), rerates + 1);
            for (id, bits) in before {
                prop_assert_eq!(eng.rate_of(id).unwrap().to_bits(), bits);
            }
            ids.push(id);
        }
        let rerates = eng.rerate_count();
        eng.complete(ids[0]);
        prop_assert_eq!(eng.rerate_count(), rerates);
        for &id in &ids[1..] {
            prop_assert_eq!(eng.rate_of(id).unwrap().to_bits(), 15.0f64.to_bits());
        }
    }
}
