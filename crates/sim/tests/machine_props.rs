//! Property tests driving the whole machine with randomized packet
//! programs: whatever the schedule, the hardware invariants must hold.

use proptest::prelude::*;

use krisp_sim::{
    CuMask, EnforcementMode, KernelDesc, Machine, MachineConfig, SimDuration, SimEvent,
};

/// A randomized host action.
#[derive(Debug, Clone)]
enum Action {
    Dispatch {
        queue: u8,
        work_us: u16,
        parallelism: u16,
    },
    SizedDispatch {
        queue: u8,
        work_us: u16,
        parallelism: u16,
        request: u16,
    },
    Barrier {
        queue: u8,
    },
    SignalledBarrier {
        queue: u8,
    },
    Timer {
        delay_us: u16,
    },
    SetMask {
        queue: u8,
        cus: u16,
    },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..4, 10u16..5_000, 1u16..=60).prop_map(|(queue, work_us, parallelism)| {
            Action::Dispatch {
                queue,
                work_us,
                parallelism,
            }
        }),
        (0u8..4, 10u16..5_000, 1u16..=60, 1u16..=60).prop_map(
            |(queue, work_us, parallelism, request)| Action::SizedDispatch {
                queue,
                work_us,
                parallelism,
                request
            }
        ),
        (0u8..4).prop_map(|queue| Action::Barrier { queue }),
        (0u8..4).prop_map(|queue| Action::SignalledBarrier { queue }),
        (1u16..10_000).prop_map(|delay_us| Action::Timer { delay_us }),
        (0u8..4, 1u16..=60).prop_map(|(queue, cus)| Action::SetMask { queue, cus }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn machine_survives_any_packet_program(
        actions in proptest::collection::vec(action_strategy(), 1..40),
        kernel_scoped in proptest::bool::ANY,
        jitter in proptest::bool::ANY,
    ) {
        let mut m = Machine::new(MachineConfig {
            mode: if kernel_scoped {
                EnforcementMode::KernelScoped
            } else {
                EnforcementMode::QueueMask
            },
            jitter_sigma: if jitter { 0.05 } else { 0.0 },
            ..MachineConfig::default()
        });
        let queues: Vec<_> = (0..4).map(|_| m.create_queue()).collect();
        let topo = m.topology();

        let mut dispatched = 0u32;
        let mut barriers = 0u32;
        let mut timers = 0u32;
        let mut pending_signals = Vec::new();
        for a in &actions {
            match *a {
                Action::Dispatch { queue, work_us, parallelism } => {
                    m.push_dispatch(
                        queues[queue as usize],
                        KernelDesc::new("k", work_us as f64 * 1e3, parallelism),
                        dispatched as u64,
                    );
                    dispatched += 1;
                }
                Action::SizedDispatch { queue, work_us, parallelism, request } => {
                    m.push_sized_dispatch(
                        queues[queue as usize],
                        KernelDesc::new("k", work_us as f64 * 1e3, parallelism),
                        request,
                        dispatched as u64,
                    );
                    dispatched += 1;
                }
                Action::Barrier { queue } => {
                    m.push_barrier(queues[queue as usize], None, 1000 + barriers as u64);
                    barriers += 1;
                }
                Action::SignalledBarrier { queue } => {
                    let sig = m.create_signal();
                    m.push_barrier(queues[queue as usize], Some(sig), 1000 + barriers as u64);
                    barriers += 1;
                    pending_signals.push(sig);
                }
                Action::Timer { delay_us } => {
                    m.add_timer(SimDuration::from_micros(delay_us as u64), 2000 + timers as u64);
                    timers += 1;
                }
                Action::SetMask { queue, cus } => {
                    m.set_queue_mask(queues[queue as usize], CuMask::first_n(cus, &topo))
                        .expect("non-empty mask");
                }
            }
        }
        // Complete all signals so every barrier can drain.
        for sig in pending_signals {
            m.complete_signal(sig);
        }

        let mut completed = 0u32;
        let mut consumed = 0u32;
        let mut fired = 0u32;
        let mut last_at = krisp_sim::SimTime::ZERO;
        while let Some(ev) = m.step() {
            let at = match ev {
                SimEvent::KernelCompleted { at, .. } => {
                    completed += 1;
                    at
                }
                SimEvent::BarrierConsumed { at, .. } => {
                    consumed += 1;
                    at
                }
                SimEvent::TimerFired { at, .. } => {
                    fired += 1;
                    at
                }
                SimEvent::KernelStarted { at, .. } => at,
                SimEvent::CusFailed { at, .. } => at,
            };
            // Events arrive in nondecreasing time order.
            prop_assert!(at >= last_at);
            last_at = at;
        }

        // Conservation: everything injected came back out exactly once.
        prop_assert_eq!(completed, dispatched);
        prop_assert_eq!(consumed, barriers);
        prop_assert_eq!(fired, timers);
        // The resource monitor returned to zero.
        prop_assert_eq!(m.counters().total(), 0);
        // Occupancy was recorded whenever kernels ran.
        if dispatched > 0 {
            prop_assert!(m.busy_cu_seconds() > 0.0);
            prop_assert!(m.service_cu_seconds() > 0.0);
            // Without bandwidth floors, delivered service can never
            // exceed occupied capacity.
            prop_assert!(m.service_cu_seconds() <= m.busy_cu_seconds() + 1e-9);
        }
        // Energy is at least idle power over the elapsed span.
        let idle_floor = 25.0 * m.now().as_secs_f64();
        prop_assert!(m.energy_joules() + 1e-9 >= idle_floor);
    }
}
