//! An invalidating next-event calendar for multi-device dispatchers.
//!
//! [`Dispatcher`](crate::engine::Dispatcher) implementations that own a
//! fleet of devices answer `next_device_at` on every loop iteration; a
//! naive implementation re-queries every device each time. The
//! [`EventCalendar`] caches each device's next-event instant in a slot
//! and only re-queries slots explicitly invalidated since the last
//! refresh, so a quiescent fleet costs one comparison per loop
//! iteration instead of a full scan.
//!
//! The dispatcher marks slots dirty from its `&mut self` methods (an
//! arrival touches one device, a crash may touch any) and calls
//! [`EventCalendar::refresh`] before returning, keeping the `&self`
//! queries ([`EventCalendar::earliest`]) pure — the contract
//! [`crate::engine::drive`] relies on. Ties resolve to the lowest slot
//! index, matching the documented lowest-device-index ordering.

use krisp_sim::SimTime;

/// Cached per-device next-event instants with explicit invalidation.
///
/// # Examples
///
/// ```
/// use krisp_serve_core::EventCalendar;
/// use krisp_sim::SimTime;
///
/// let schedule = [Some(SimTime::from_nanos(30)), Some(SimTime::from_nanos(10))];
/// let mut cal = EventCalendar::new(2);
/// cal.refresh(|i| schedule[i]);
/// assert_eq!(cal.earliest(), Some((SimTime::from_nanos(10), 1)));
/// ```
#[derive(Debug)]
pub struct EventCalendar {
    slots: Vec<Option<SimTime>>,
    dirty: Vec<bool>,
    any_dirty: bool,
    earliest: Option<(SimTime, usize)>,
}

impl EventCalendar {
    /// A calendar of `n` slots, all initially dirty (unknown).
    pub fn new(n: usize) -> EventCalendar {
        EventCalendar {
            slots: vec![None; n],
            dirty: vec![true; n],
            any_dirty: n > 0,
            earliest: None,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the calendar has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Marks one slot stale; the next [`EventCalendar::refresh`]
    /// re-queries it.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn invalidate(&mut self, i: usize) {
        self.dirty[i] = true;
        self.any_dirty = true;
    }

    /// Marks every slot stale (control-plane events may touch any
    /// device).
    pub fn invalidate_all(&mut self) {
        self.dirty.fill(true);
        self.any_dirty = !self.dirty.is_empty();
    }

    /// Re-queries every dirty slot via `next_at` and recomputes the
    /// cached minimum. A call with nothing dirty is O(1).
    pub fn refresh(&mut self, mut next_at: impl FnMut(usize) -> Option<SimTime>) {
        if !self.any_dirty {
            return;
        }
        for (i, dirty) in self.dirty.iter_mut().enumerate() {
            if *dirty {
                self.slots[i] = next_at(i);
                *dirty = false;
            }
        }
        self.any_dirty = false;
        self.earliest = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (t, i)))
            .min();
    }

    /// The earliest cached instant and its slot index (lowest index on
    /// ties), or `None` when every slot is idle. Only meaningful after
    /// [`EventCalendar::refresh`]; a query with dirty slots pending
    /// returns the last refreshed view.
    pub fn earliest(&self) -> Option<(SimTime, usize)> {
        debug_assert!(!self.any_dirty, "earliest() queried with stale slots");
        self.earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn earliest_picks_min_with_lowest_index_tie_break() {
        let mut cal = EventCalendar::new(3);
        cal.refresh(|i| [Some(t(20)), Some(t(10)), Some(t(10))][i]);
        assert_eq!(cal.earliest(), Some((t(10), 1)));
    }

    #[test]
    fn idle_slots_are_skipped() {
        let mut cal = EventCalendar::new(3);
        cal.refresh(|i| [None, Some(t(7)), None][i]);
        assert_eq!(cal.earliest(), Some((t(7), 1)));
        cal.invalidate(1);
        cal.refresh(|_| None);
        assert_eq!(cal.earliest(), None);
    }

    #[test]
    fn refresh_only_queries_dirty_slots() {
        let mut cal = EventCalendar::new(3);
        cal.refresh(|i| Some(t(10 + i as u64)));
        let mut queried = Vec::new();
        cal.invalidate(2);
        cal.refresh(|i| {
            queried.push(i);
            Some(t(5))
        });
        assert_eq!(queried, vec![2]);
        assert_eq!(cal.earliest(), Some((t(5), 2)));
    }

    #[test]
    fn invalidate_all_requeries_everything() {
        let mut cal = EventCalendar::new(2);
        cal.refresh(|_| Some(t(50)));
        cal.invalidate_all();
        let mut queried = 0;
        cal.refresh(|i| {
            queried += 1;
            Some(t(40 + i as u64))
        });
        assert_eq!(queried, 2);
        assert_eq!(cal.earliest(), Some((t(40), 0)));
    }

    #[test]
    fn clean_refresh_is_a_no_op() {
        let mut cal = EventCalendar::new(2);
        cal.refresh(|_| Some(t(1)));
        cal.refresh(|_| panic!("no slot is dirty"));
        assert_eq!(cal.earliest(), Some((t(1), 0)));
    }

    #[test]
    fn empty_calendar_is_idle() {
        let mut cal = EventCalendar::new(0);
        cal.refresh(|_| unreachable!());
        assert_eq!(cal.earliest(), None);
        assert!(cal.is_empty());
        assert_eq!(cal.len(), 0);
    }
}
