//! # krisp-serve-core — the event-driven serving engine
//!
//! One serving engine under every front-end. The single-GPU server
//! (`krisp_server::experiment`) and the multi-GPU cluster
//! (`krisp_server::cluster`) used to carry parallel implementations of
//! workers, bounded queues, admission guardrails, arrival generation,
//! deadlines, and flow accounting; this crate owns the single copy of
//! each, parameterized over the [`engine::Dispatcher`] trait so routing,
//! health, and hedging policy stay with the deployment that needs them.
//!
//! The pieces, bottom-up:
//!
//! - [`queue`] — [`InferenceRequest`], the generic bounded
//!   [`RequestQueue`] with optional CoDel sojourn shedding (over any
//!   [`Sojourn`] payload).
//! - [`sentinel`] — token-bucket admission, the brownout hysteresis
//!   state machine, and the [`AdmissionChain`] that composes them in
//!   guardrail order.
//! - [`books`] — [`FlowCounters`] / [`RobustnessCounters`] /
//!   [`SentinelCounters`], the conservation books every result carries.
//! - [`arrival`] — the [`Arrival`] process descriptions plus the
//!   deterministic Poisson stream generators.
//! - [`worker`] — the per-model [`Worker`] lifecycle (queue → batch →
//!   launch → record).
//! - [`calendar`] — the invalidating [`EventCalendar`] multi-device
//!   dispatchers use to answer `next_device_at` without re-scanning
//!   every device per event.
//! - [`engine`] — the conservative event loop ([`engine::drive`]) that
//!   interleaves control events, external arrivals, and device events
//!   behind the [`engine::Dispatcher`] trait.
//!
//! Everything is driven by simulation time and seeded RNGs only: same
//! seed, same trace, bit-identical results — the property the golden
//! fixtures in `krisp-server` pin across refactors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod books;
pub mod calendar;
pub mod engine;
pub mod queue;
pub mod sentinel;
pub mod worker;

pub use arrival::{exp_sample, poisson_arrivals, Arrival};
pub use books::{FlowCounters, RobustnessCounters, SentinelCounters};
pub use calendar::EventCalendar;
pub use engine::{drive, Dispatcher, ExternalArrival};
pub use queue::{InferenceRequest, RequestQueue, Sojourn};
pub use sentinel::{
    AdmissionChain, BrownoutConfig, BrownoutController, SentinelConfig, SentinelState, TokenBucket,
    TokenBucketConfig,
};
pub use worker::Worker;
