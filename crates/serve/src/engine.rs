//! The conservative event loop shared by every serving front-end.
//!
//! [`drive`] interleaves three event sources in deterministic priority
//! order — dispatcher **control** events (crash scripts, hedge checks),
//! pre-generated **external arrivals**, and **device** events — against
//! a [`Dispatcher`] implementation that owns all deployment-specific
//! policy (routing, health, hedging, batching). The loop itself contains
//! no policy: it only decides *whose turn it is*, with fixed tie-breaks
//! so same-seed runs replay bit-identically.
//!
//! Per step, earliest timestamp wins, with ties resolved as:
//!
//! 1. **Control** fires when its time is `<=` both the next arrival and
//!    the next device event (a dispatcher with several control sources
//!    merges them in [`Dispatcher::next_control_at`] and applies its own
//!    internal tie-break in [`Dispatcher::step_control`]).
//! 2. **Arrival** fires when its time is `<=` the next device event, so
//!    routing at instant *t* sees every device quiesced up to *t*.
//! 3. Otherwise one **device** event is stepped.
//!
//! The single-GPU server schedules its arrivals as runtime timers, so it
//! runs [`drive`] with an empty arrival vector and no control events —
//! the loop degenerates to stepping the device machine until drained.
//!
//! [`drive`] queries `next_device_at` once per loop iteration, so a
//! multi-device dispatcher should not rescan its whole fleet on every
//! call; [`crate::calendar::EventCalendar`] caches per-device next-event
//! instants and re-queries only the devices a step actually touched,
//! while keeping `next_device_at` the pure query this trait requires.

use krisp_sim::SimTime;

/// One pre-generated open-loop arrival, as produced by
/// [`crate::arrival::poisson_arrivals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExternalArrival {
    /// When the request reaches the front-end.
    pub at: SimTime,
    /// Index of the model the request targets.
    pub model: usize,
    /// Request id, assigned in global arrival order.
    pub id: u64,
}

/// Deployment-specific policy behind the shared event loop.
///
/// Implementations own their devices (one runtime machine, or a fleet),
/// their routing and health state, and any control-plane schedules. The
/// contract with [`drive`]:
///
/// - `next_*_at` methods are **pure queries**: calling them must not
///   advance any state.
/// - After `step_control` or `step_device`, the corresponding `next_*`
///   query must reflect the consumed event (no infinite loops on a
///   stuck timestamp).
/// - `on_arrival` is called with arrivals in nondecreasing time order,
///   and only when every device is quiesced up to the arrival instant.
pub trait Dispatcher {
    /// Earliest pending control event (crash, hedge check, …), if any.
    /// A dispatcher with several control sources returns their minimum
    /// and remembers its own preference for same-instant ordering.
    fn next_control_at(&self) -> Option<SimTime>;

    /// Consumes exactly one control event — the one whose time
    /// [`Dispatcher::next_control_at`] just reported.
    fn step_control(&mut self);

    /// Earliest pending device event across all devices, if any.
    fn next_device_at(&self) -> Option<SimTime>;

    /// Steps exactly one device event. Returns `false` to stop the
    /// loop (the single-GPU server stops when its machine drains);
    /// dispatchers that drive to a horizon simply return `true`.
    fn step_device(&mut self) -> bool;

    /// Accepts one external arrival: admit/shed, route, and enqueue.
    fn on_arrival(&mut self, arrival: ExternalArrival);
}

/// Runs `dispatcher` to completion against a time-sorted arrival
/// stream, with the tie-break order documented at module level. Returns
/// when every source is exhausted or [`Dispatcher::step_device`]
/// requests a stop.
pub fn drive<D: Dispatcher>(dispatcher: &mut D, mut arrivals: Vec<ExternalArrival>) {
    // Pop from the back in time order.
    arrivals.reverse();
    loop {
        let next_device = dispatcher.next_device_at();
        let next_arrival = arrivals.last().map(|a| a.at);
        if let Some(tc) = dispatcher.next_control_at() {
            if [next_device, next_arrival]
                .iter()
                .flatten()
                .all(|&t| tc <= t)
            {
                dispatcher.step_control();
                continue;
            }
        }
        let take_arrival = match (next_device, next_arrival) {
            (None, None) => break,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(tg), Some(ta)) => ta <= tg,
        };
        if take_arrival {
            let a = arrivals.pop().expect("checked above");
            dispatcher.on_arrival(a);
        } else if !dispatcher.step_device() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the interleaving [`drive`] chooses over scripted event
    /// sources, so the tie-break order is pinned by test.
    struct Script {
        control: Vec<SimTime>,
        device: Vec<SimTime>,
        log: Vec<(char, u64)>,
        stop_after_devices: Option<usize>,
        devices_stepped: usize,
    }

    impl Script {
        fn new(control: &[u64], device: &[u64]) -> Script {
            // Store reversed so pop() yields time order.
            let mut control: Vec<SimTime> =
                control.iter().map(|&n| SimTime::from_nanos(n)).collect();
            let mut device: Vec<SimTime> = device.iter().map(|&n| SimTime::from_nanos(n)).collect();
            control.reverse();
            device.reverse();
            Script {
                control,
                device,
                log: Vec::new(),
                stop_after_devices: None,
                devices_stepped: 0,
            }
        }
    }

    impl Dispatcher for Script {
        fn next_control_at(&self) -> Option<SimTime> {
            self.control.last().copied()
        }
        fn step_control(&mut self) {
            let t = self.control.pop().expect("control pending");
            self.log.push(('c', t.as_nanos()));
        }
        fn next_device_at(&self) -> Option<SimTime> {
            self.device.last().copied()
        }
        fn step_device(&mut self) -> bool {
            let t = self.device.pop().expect("device pending");
            self.log.push(('d', t.as_nanos()));
            self.devices_stepped += 1;
            self.stop_after_devices != Some(self.devices_stepped)
        }
        fn on_arrival(&mut self, arrival: ExternalArrival) {
            self.log.push(('a', arrival.at.as_nanos()));
        }
    }

    fn arrivals(times: &[u64]) -> Vec<ExternalArrival> {
        times
            .iter()
            .enumerate()
            .map(|(id, &n)| ExternalArrival {
                at: SimTime::from_nanos(n),
                model: 0,
                id: id as u64,
            })
            .collect()
    }

    #[test]
    fn ties_resolve_control_then_arrival_then_device() {
        let mut s = Script::new(&[10], &[10, 20]);
        drive(&mut s, arrivals(&[10, 20]));
        assert_eq!(
            s.log,
            vec![('c', 10), ('a', 10), ('d', 10), ('a', 20), ('d', 20)]
        );
    }

    #[test]
    fn strict_time_order_across_sources() {
        let mut s = Script::new(&[15], &[5, 25]);
        drive(&mut s, arrivals(&[10, 30]));
        assert_eq!(
            s.log,
            vec![('d', 5), ('a', 10), ('c', 15), ('d', 25), ('a', 30)]
        );
    }

    #[test]
    fn device_stop_ends_the_loop_with_work_pending() {
        let mut s = Script::new(&[], &[5, 6, 7]);
        s.stop_after_devices = Some(2);
        drive(&mut s, Vec::new());
        assert_eq!(s.log, vec![('d', 5), ('d', 6)]);
        assert_eq!(s.device.len(), 1, "third device event untouched");
    }

    #[test]
    fn empty_sources_return_immediately() {
        let mut s = Script::new(&[], &[]);
        drive(&mut s, Vec::new());
        assert!(s.log.is_empty());
    }

    #[test]
    fn trailing_arrivals_drain_after_devices_exhaust() {
        let mut s = Script::new(&[], &[5]);
        drive(&mut s, arrivals(&[10, 20]));
        assert_eq!(s.log, vec![('d', 5), ('a', 10), ('a', 20)]);
    }
}
