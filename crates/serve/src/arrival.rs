//! Arrival processes: how requests reach the serving front-end.
//!
//! Two deterministic generators share this module. [`exp_sample`] draws
//! one inter-arrival gap for open-loop processes that interleave with
//! the event loop (the single-GPU server schedules each next arrival as
//! a runtime timer). [`poisson_arrivals`] pre-generates a whole merged
//! multi-model stream up front (the cluster's regime, where arrivals are
//! consumed against a conservative multi-machine clock). Both draw from
//! seeded [`StdRng`]s only, so the same seed always yields the same
//! stream — the bit-identity property the golden fixtures pin.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use krisp_sim::{SimDuration, SimTime};

use crate::engine::ExternalArrival;

/// How requests arrive at the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Maximum load: each worker always has a next request (the paper's
    /// evaluation regime, §VI-A).
    ClosedLoop,
    /// Open loop: requests arrive per worker as a Poisson process.
    Poisson {
        /// Mean arrival rate per worker, requests per second.
        rps_per_worker: f64,
    },
    /// Open loop with **dynamic batching**: individual samples arrive per
    /// worker as a Poisson process and the front-end forms a batch when
    /// either `max_batch` samples are waiting or the oldest sample has
    /// waited `batch_timeout`. Latencies are per *sample* (queueing +
    /// batching + inference), and the kernel trace really changes with
    /// the formed batch size — the dynamic behaviour §V argues static
    /// traces cannot capture.
    OpenBatched {
        /// Mean sample arrival rate per worker, samples per second.
        samples_per_s: f64,
        /// Largest batch the front-end will form.
        max_batch: u32,
        /// Longest a sample may wait before a partial batch is formed.
        batch_timeout: SimDuration,
    },
}

/// One inter-arrival gap of a Poisson process with mean rate
/// `rate_per_s`, via inverse-transform sampling. The draw excludes 0 so
/// the gap is always positive.
pub fn exp_sample(rng: &mut StdRng, rate_per_s: f64) -> SimDuration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimDuration::from_secs_f64(-u.ln() / rate_per_s)
}

/// Pre-generates the merged arrival stream for `models` independent
/// Poisson processes of `rps_per_model` each, over `horizon`.
///
/// The draw order is fixed — each model's stream is generated to
/// exhaustion before the next, then the merge is sorted by
/// `(time, model)` and request ids are assigned in final arrival
/// order — so a given `seed` always produces the identical stream.
/// Returned ascending in time, ready for [`crate::engine::drive`].
pub fn poisson_arrivals(
    seed: u64,
    models: usize,
    rps_per_model: f64,
    horizon: SimDuration,
) -> Vec<ExternalArrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<(SimTime, usize)> = Vec::new();
    for mi in 0..models {
        let mut t = SimTime::ZERO;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += SimDuration::from_secs_f64(-u.ln() / rps_per_model);
            if t.as_nanos() > horizon.as_nanos() {
                break;
            }
            arrivals.push((t, mi));
        }
    }
    arrivals.sort();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(id, (at, model))| ExternalArrival {
            at,
            model,
            id: id as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_sample_is_positive_and_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let ga = exp_sample(&mut a, 250.0);
            assert_eq!(ga, exp_sample(&mut b, 250.0));
            assert!(ga.as_nanos() > 0);
        }
    }

    #[test]
    fn poisson_stream_is_sorted_with_sequential_ids() {
        let s = poisson_arrivals(42, 3, 200.0, SimDuration::from_secs(1));
        assert!(!s.is_empty());
        for (i, w) in s.windows(2).enumerate() {
            assert!(w[0].at <= w[1].at, "unsorted at {i}");
        }
        for (i, a) in s.iter().enumerate() {
            assert_eq!(a.id, i as u64);
            assert!(a.model < 3);
            assert!(a.at.as_nanos() <= SimDuration::from_secs(1).as_nanos());
        }
        // Same seed, same stream; different seed, different stream.
        assert_eq!(s, poisson_arrivals(42, 3, 200.0, SimDuration::from_secs(1)));
        assert_ne!(s, poisson_arrivals(43, 3, 200.0, SimDuration::from_secs(1)));
    }

    #[test]
    fn poisson_rate_is_roughly_honored() {
        let s = poisson_arrivals(9, 1, 1_000.0, SimDuration::from_secs(4));
        let n = s.len() as f64; // expect ~4000
        assert!((3_500.0..=4_500.0).contains(&n), "got {n}");
    }
}
