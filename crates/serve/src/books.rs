//! The conservation books every serving result carries.
//!
//! Three ledger types, shared verbatim by the single-GPU server and the
//! multi-GPU cluster: [`RobustnessCounters`] (what degraded instead of
//! crashing), [`FlowCounters`] (where every request ended up), and
//! [`SentinelCounters`] (what the guardrail control loops did). The
//! flow books are the invariant the chaos fuzzer audits after every
//! run: no request may be lost or double-counted, whatever faults,
//! sheds, or retries occurred along the way.

use serde::{Deserialize, Serialize};

/// Degradation counters from one experiment: what the server shed,
/// timed out, failed, or worked around instead of crashing.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RobustnessCounters {
    /// Requests rejected because a bounded queue was full.
    pub shed: u64,
    /// Queued requests dropped for exceeding their deadline.
    pub timed_out: u64,
    /// Requests whose final kernel was abandoned by the watchdog.
    pub failed_requests: u64,
    /// Kernels abandoned after exhausting watchdog retries.
    pub failed_kernels: u64,
    /// CUs that had permanently failed by the end of the run.
    pub failed_cus: u16,
    /// Streams that fell back from kernel-scoped to stream-scoped
    /// masking.
    pub stream_fallbacks: u32,
    /// Runtime degradations, stringified in occurrence order.
    pub errors: Vec<String>,
}

impl RobustnessCounters {
    /// True when the run saw no degradation at all.
    pub fn is_clean(&self) -> bool {
        self == &RobustnessCounters::default()
    }
}

/// Whole-run request-flow accounting, counting **every** request from
/// arrival to its final disposition regardless of the measurement
/// window. These are the conservation books the chaos fuzzer audits:
/// no request may be lost or double-counted.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowCounters {
    /// Requests that arrived at the front-end.
    pub arrivals: u64,
    /// Requests admitted past the guardrails into a queue or worker.
    pub admitted: u64,
    /// Admitted requests that completed (inside the window or not).
    pub completed: u64,
    /// Arrivals rejected by token-bucket admission or Shed-state policy.
    pub shed_admission: u64,
    /// Arrivals rejected because a bounded queue was at capacity.
    pub shed_capacity: u64,
    /// Admitted requests shed by CoDel for excessive sojourn time.
    pub shed_codel: u64,
    /// Admitted requests dropped for exceeding their deadline in queue.
    pub timed_out: u64,
    /// Admitted requests whose final kernel was abandoned.
    pub failed: u64,
    /// Admitted requests still queued or executing when the run ended.
    pub in_flight_at_end: u64,
}

impl FlowCounters {
    /// True when the books balance: every arrival is accounted for
    /// exactly once.
    ///
    /// ```
    /// use krisp_serve_core::books::FlowCounters;
    ///
    /// let f = FlowCounters { arrivals: 5, admitted: 4, completed: 3,
    ///     shed_admission: 1, in_flight_at_end: 1, ..FlowCounters::default() };
    /// assert!(f.conserved());
    /// ```
    pub fn conserved(&self) -> bool {
        self.arrivals == self.admitted + self.shed_admission + self.shed_capacity
            && self.admitted
                == self.completed
                    + self.shed_codel
                    + self.timed_out
                    + self.failed
                    + self.in_flight_at_end
    }
}

/// Sentinel guardrail activity over one run (shed counts live in
/// [`FlowCounters`]; these are the control-loop internals).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SentinelCounters {
    /// Brownout state-machine transitions taken.
    pub transitions: u64,
    /// Watchdog retries granted by the retry budget.
    pub retry_budget_granted: u64,
    /// Watchdog retries denied by the retry budget.
    pub retry_budget_denied: u64,
    /// Final brownout state code (0 normal, 1 brownout, 2 shed).
    pub final_state: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_conservation_detects_lost_requests() {
        let f = FlowCounters {
            arrivals: 10,
            admitted: 9, // one arrival vanished without a shed count
            completed: 9,
            ..FlowCounters::default()
        };
        assert!(!f.conserved());
        assert!(FlowCounters::default().conserved());
    }

    #[test]
    fn default_counters_read_clean() {
        assert!(RobustnessCounters::default().is_clean());
        let r = RobustnessCounters {
            failed_kernels: 1,
            ..RobustnessCounters::default()
        };
        assert!(!r.is_clean());
    }
}
