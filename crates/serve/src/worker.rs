//! The per-model worker: queue → batch → launch → record.
//!
//! One [`Worker`] owns one stream on one device and serves one model.
//! It is deployment-agnostic: the single-GPU server drives a vector of
//! them directly, while the cluster wraps its own routing around the
//! same lifecycle. Kernel traces are shared [`Arc`]s, so co-located
//! workers of the same model reference one trace instead of carrying
//! per-worker copies.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use krisp_models::{generate_trace, ModelKind, TraceConfig};
use krisp_obs::{EventBus, EventKind};
use krisp_runtime::{Runtime, StreamId};
use krisp_sim::{KernelDesc, SimDuration, SimTime};

use crate::queue::{InferenceRequest, RequestQueue};

/// One model's serving state: its stream, trace, request queue, and the
/// completion records the result layer later window-filters.
pub struct Worker {
    /// The runtime stream this worker launches on.
    pub stream: StreamId,
    /// The model this worker serves.
    pub model: ModelKind,
    /// Trace for the configured batch size (closed loop / Poisson),
    /// shared across same-model workers.
    pub trace: Arc<Vec<KernelDesc>>,
    /// Traces per formed batch size (dynamic batching), filled lazily.
    pub traces_by_batch: HashMap<u32, Arc<Vec<KernelDesc>>>,
    /// Launch overhead the dynamic-batching traces are generated with.
    pub launch_overhead: SimDuration,
    /// The bounded request queue (with optional CoDel shedding).
    pub queue: RequestQueue,
    /// Enqueue times of samples awaiting batch formation (OpenBatched).
    pub sample_queue: VecDeque<SimTime>,
    /// Whether an inference run is in flight on this worker's stream.
    pub busy: bool,
    /// Request/sample start times of the in-flight run.
    pub inflight_starts: Vec<SimTime>,
    /// Kernel count of the in-flight run (its last tag + 1).
    pub inflight_kernels: usize,
    /// (completion time, latency ms) per finished request or sample.
    pub records: Vec<(SimTime, f64)>,
    /// Next request/sample id this worker will assign.
    pub next_request_id: u64,
    /// Event bus tagged with this worker's index (disabled by default).
    pub bus: EventBus,
    /// Queued requests dropped for exceeding the deadline.
    pub timed_out: u64,
    /// Requests whose final kernel the watchdog abandoned.
    pub failed_requests: u64,
    /// Kernels the watchdog abandoned on this worker's stream.
    pub failed_kernels: u64,
}

impl Worker {
    /// An idle worker serving `model` on `stream` with the given trace,
    /// queue, and event bus.
    pub fn new(
        stream: StreamId,
        model: ModelKind,
        trace: Arc<Vec<KernelDesc>>,
        launch_overhead: SimDuration,
        queue: RequestQueue,
        bus: EventBus,
    ) -> Worker {
        Worker {
            stream,
            model,
            trace,
            traces_by_batch: HashMap::new(),
            launch_overhead,
            queue,
            sample_queue: VecDeque::new(),
            busy: false,
            inflight_starts: Vec::new(),
            inflight_kernels: 0,
            records: Vec::new(),
            next_request_id: 0,
            bus,
            timed_out: 0,
            failed_requests: 0,
            failed_kernels: 0,
        }
    }

    /// Pops the next request still worth serving: CoDel (when the queue
    /// carries one) sheds heads with excessive sojourn, then queued
    /// requests that already exceeded the deadline are dropped.
    pub fn pop_runnable(
        &mut self,
        now: SimTime,
        deadline: Option<SimDuration>,
    ) -> Option<InferenceRequest> {
        loop {
            let (dropped, head) = self.queue.pop_at(now);
            for d in dropped {
                let depth = self.queue.len() as u32;
                self.bus.emit(now.as_nanos(), || EventKind::RequestShed {
                    request_id: d.id,
                    depth,
                });
            }
            let req = head?;
            let waited = now.saturating_since(req.enqueued_at);
            if deadline.is_some_and(|d| waited > d) {
                self.timed_out += 1;
                self.bus
                    .emit(now.as_nanos(), || EventKind::RequestTimedOut {
                        request_id: req.id,
                        waited_ns: waited.as_nanos(),
                    });
                continue;
            }
            return Some(req);
        }
    }

    /// Starts one whole request of the configured batch size.
    pub fn start_inference(&mut self, rt: &mut Runtime, started: SimTime) {
        debug_assert!(!self.busy);
        self.busy = true;
        self.inflight_kernels = self.trace.len();
        self.inflight_starts = vec![started];
        for (i, k) in self.trace.iter().enumerate() {
            rt.launch(self.stream, k.clone(), i as u64);
        }
    }

    /// Dynamic batching: forms and launches a batch when the front-end
    /// policy (full batch or aged head-of-line sample) allows.
    pub fn try_form_batch(
        &mut self,
        rt: &mut Runtime,
        now: SimTime,
        max_batch: u32,
        batch_timeout: SimDuration,
    ) {
        if self.busy {
            return;
        }
        let Some(&oldest) = self.sample_queue.front() else {
            return;
        };
        let full = self.sample_queue.len() >= max_batch as usize;
        let aged = now.saturating_since(oldest) >= batch_timeout;
        if !(full || aged) {
            return;
        }
        let take = self.sample_queue.len().min(max_batch as usize);
        let starts: Vec<SimTime> = self.sample_queue.drain(..take).collect();
        let batch = take as u32;
        self.bus.emit(now.as_nanos(), || EventKind::BatchFormed {
            batch,
            waited_ns: now.saturating_since(oldest).as_nanos(),
        });
        let model = self.model;
        let overhead = self.launch_overhead;
        let trace = Arc::clone(self.traces_by_batch.entry(batch).or_insert_with(|| {
            Arc::new(generate_trace(
                model,
                &TraceConfig {
                    batch,
                    launch_overhead: overhead,
                    ..TraceConfig::default()
                },
            ))
        }));
        self.busy = true;
        self.inflight_kernels = trace.len();
        self.inflight_starts = starts;
        for (i, k) in trace.iter().enumerate() {
            rt.launch(self.stream, k.clone(), i as u64);
        }
    }
}
