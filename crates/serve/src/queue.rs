//! Inference requests and the generic bounded request queues of the
//! serving front-end.

use std::collections::VecDeque;

use krisp_models::ModelKind;
use krisp_sim::{CoDel, CoDelConfig, SimDuration, SimTime};

pub use krisp_sim::Sojourn;

/// One client inference request (a batch of inputs for one model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceRequest {
    /// Monotonic request id.
    pub id: u64,
    /// The model to run.
    pub model: ModelKind,
    /// Batch size.
    pub batch: u32,
    /// When the front-end enqueued the request.
    pub enqueued_at: SimTime,
}

impl Sojourn for InferenceRequest {
    fn enqueued_at(&self) -> SimTime {
        self.enqueued_at
    }
}

/// A FIFO request queue, one per worker (the paper's shared-memory
/// request queues, simplified to in-process FIFOs since the simulation
/// is single-threaded).
///
/// The queue can be **bounded**: pushes beyond the capacity are rejected
/// (load shedding) and counted, so an overloaded worker degrades by
/// refusing work instead of growing its backlog without limit.
///
/// Independently, the queue can run a **CoDel** sojourn-time control law
/// ([`RequestQueue::with_codel`]): heads whose waiting time stays above
/// the target for a full interval are shed at dequeue, which reacts to
/// *staleness* long before a depth bound trips. Depth sheds and sojourn
/// sheds are counted separately ([`RequestQueue::shed`] vs
/// [`RequestQueue::shed_sojourn`]).
///
/// # Examples
///
/// ```
/// use krisp_models::ModelKind;
/// use krisp_serve_core::{InferenceRequest, RequestQueue};
/// use krisp_sim::SimTime;
///
/// let mut q = RequestQueue::bounded(1);
/// let req = |id| InferenceRequest {
///     id,
///     model: ModelKind::Albert,
///     batch: 32,
///     enqueued_at: SimTime::ZERO,
/// };
/// assert!(q.push(req(0)).is_ok());
/// assert!(q.push(req(1)).is_err()); // full: shed
/// assert_eq!(q.shed(), 1);
/// assert_eq!(q.pop().unwrap().id, 0);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RequestQueue<T = InferenceRequest> {
    queue: VecDeque<T>,
    max_depth: usize,
    /// `None` = unbounded (the pre-robustness behavior).
    capacity: Option<usize>,
    shed: u64,
    codel: Option<CoDel>,
    shed_sojourn: u64,
}

impl<T> Default for RequestQueue<T> {
    fn default() -> RequestQueue<T> {
        RequestQueue {
            queue: VecDeque::new(),
            max_depth: 0,
            capacity: None,
            shed: 0,
            codel: None,
            shed_sojourn: 0,
        }
    }
}

impl<T> RequestQueue<T> {
    /// Creates an empty unbounded queue.
    pub fn new() -> RequestQueue<T> {
        RequestQueue::default()
    }

    /// Creates an empty queue that sheds pushes beyond `capacity`
    /// waiting requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (such a queue could never serve).
    pub fn bounded(capacity: usize) -> RequestQueue<T> {
        assert!(
            capacity > 0,
            "a queue needs capacity for at least one request"
        );
        RequestQueue {
            capacity: Some(capacity),
            ..RequestQueue::default()
        }
    }

    /// Attaches a CoDel sojourn-time dropper, enabled on every
    /// [`RequestQueue::pop_at`] call.
    pub fn with_codel(mut self, cfg: CoDelConfig) -> RequestQueue<T> {
        self.codel = Some(CoDel::new(cfg));
        self
    }

    /// Enqueues a request; a full bounded queue rejects it, returning it
    /// to the caller and counting the shed.
    ///
    /// # Errors
    ///
    /// Returns the request itself when the queue is at capacity.
    pub fn push(&mut self, request: T) -> Result<(), T> {
        if self.capacity.is_some_and(|cap| self.queue.len() >= cap) {
            self.shed += 1;
            return Err(request);
        }
        self.queue.push_back(request);
        self.max_depth = self.max_depth.max(self.queue.len());
        Ok(())
    }

    /// Dequeues the oldest request, bypassing the CoDel law (closed-loop
    /// paths and drains that must not shed).
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates the waiting requests, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }

    /// High-water mark of the queue depth (back-pressure indicator).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Requests rejected because the queue was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Requests shed by the CoDel sojourn-time law at dequeue.
    pub fn shed_sojourn(&self) -> u64 {
        self.shed_sojourn
    }
}

impl<T: Sojourn> RequestQueue<T> {
    /// Dequeues the oldest request at instant `now`, applying the CoDel
    /// sojourn law when one is attached: heads the law rejects are
    /// returned in the first tuple slot (for the caller to account/emit
    /// events for) and the served head — if any survives — in the
    /// second. Without CoDel this is exactly [`RequestQueue::pop`] with
    /// an empty drop list. CoDel never drops the last waiting item, so a
    /// non-empty queue always serves something.
    pub fn pop_at(&mut self, now: SimTime) -> (Vec<T>, Option<T>) {
        let mut dropped = Vec::new();
        while let Some(head) = self.queue.pop_front() {
            let Some(codel) = self.codel.as_mut() else {
                return (dropped, Some(head));
            };
            let sojourn: SimDuration = now.saturating_since(head.enqueued_at());
            if codel.on_dequeue(sojourn, now, self.queue.len() + 1) {
                self.shed_sojourn += 1;
                dropped.push(head);
            } else {
                return (dropped, Some(head));
            }
        }
        (dropped, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn req(id: u64) -> InferenceRequest {
        InferenceRequest {
            id,
            model: ModelKind::Albert,
            batch: 32,
            enqueued_at: SimTime::ZERO,
        }
    }

    fn req_at(id: u64, at_ns: u64) -> InferenceRequest {
        InferenceRequest {
            enqueued_at: SimTime::from_nanos(at_ns),
            ..req(id)
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = RequestQueue::new();
        q.push(req(1)).unwrap();
        q.push(req(2)).unwrap();
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn high_water_mark() {
        let mut q = RequestQueue::new();
        q.push(req(1)).unwrap();
        q.push(req(2)).unwrap();
        q.pop();
        q.push(req(3)).unwrap();
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn unbounded_queue_never_sheds() {
        let mut q = RequestQueue::new();
        for i in 0..10_000 {
            q.push(req(i)).unwrap();
        }
        assert_eq!(q.shed(), 0);
        assert_eq!(q.capacity(), None);
    }

    #[test]
    fn bounded_queue_sheds_at_capacity() {
        let mut q = RequestQueue::bounded(2);
        q.push(req(1)).unwrap();
        q.push(req(2)).unwrap();
        let rejected = q.push(req(3)).unwrap_err();
        assert_eq!(rejected.id, 3);
        assert_eq!(q.shed(), 1);
        // Draining frees capacity again.
        q.pop();
        q.push(req(4)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.shed(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        RequestQueue::<InferenceRequest>::bounded(0);
    }

    #[test]
    fn pop_at_without_codel_is_plain_pop() {
        let mut q: RequestQueue = RequestQueue::new();
        q.push(req_at(1, 0)).unwrap();
        let (dropped, served) = q.pop_at(SimTime::from_nanos(u64::MAX / 2));
        assert!(dropped.is_empty());
        assert_eq!(served.unwrap().id, 1);
        assert_eq!(q.shed_sojourn(), 0);
    }

    #[test]
    fn codel_sheds_stale_heads_but_serves_the_last() {
        let cfg = CoDelConfig {
            target: SimDuration::from_micros(10),
            interval: SimDuration::from_micros(100),
        };
        let mut q: RequestQueue = RequestQueue::new().with_codel(cfg);
        for i in 0..8 {
            q.push(req_at(i, 0)).unwrap();
        }
        // Every head is wildly stale; still the queue keeps serving one
        // per pop until only sheds remain, and never drops the last.
        let mut served = 0u64;
        let mut now = 1_000_000u64; // 1 ms: far beyond target + interval
        let mut total_dropped = 0u64;
        while !q.is_empty() {
            let (dropped, head) = q.pop_at(SimTime::from_nanos(now));
            total_dropped += dropped.len() as u64;
            if head.is_some() {
                served += 1;
            }
            now += 200_000; // deep in the dropping episode
        }
        assert!(served >= 1, "progress guarantee violated");
        assert!(total_dropped >= 1, "the law never engaged");
        assert_eq!(q.shed_sojourn(), total_dropped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// S3: CoDel never sheds when the queue is drained faster than
        /// the target — arbitrary arrival gaps, every head popped within
        /// the target sojourn.
        #[test]
        fn codel_never_sheds_fast_drains(
            gaps in proptest::collection::vec(0u64..5_000, 1..40),
            target_us in 10u64..1_000,
        ) {
            let cfg = CoDelConfig {
                target: SimDuration::from_micros(target_us),
                interval: SimDuration::from_micros(target_us * 10),
            };
            let mut q: RequestQueue = RequestQueue::new().with_codel(cfg);
            let mut now = 0u64;
            for (i, gap) in gaps.iter().enumerate() {
                now += gap;
                q.push(req_at(i as u64, now)).unwrap();
                // Drain immediately: sojourn is 0 < target.
                let (dropped, served) = q.pop_at(SimTime::from_nanos(now));
                prop_assert!(dropped.is_empty());
                prop_assert_eq!(served.unwrap().id, i as u64);
            }
            prop_assert_eq!(q.shed_sojourn(), 0);
            prop_assert_eq!(q.shed(), 0);
        }

        /// Popping just under the target, even with backlog, never sheds.
        #[test]
        fn codel_never_sheds_below_target_with_backlog(
            n in 2usize..30,
            target_us in 50u64..500,
        ) {
            let cfg = CoDelConfig {
                target: SimDuration::from_micros(target_us),
                interval: SimDuration::from_micros(target_us * 4),
            };
            let mut q: RequestQueue = RequestQueue::new().with_codel(cfg);
            for i in 0..n {
                q.push(req_at(i as u64, (i as u64) * 10)).unwrap();
            }
            let mut served = 0usize;
            while let (dropped, Some(head)) = {
                // Serve each head one nanosecond under the target.
                let head_at = q.iter().next().map(|r| r.enqueued_at.as_nanos());
                match head_at {
                    Some(at) => q.pop_at(SimTime::from_nanos(
                        at + target_us * 1_000 - 1,
                    )),
                    None => (Vec::new(), None),
                }
            } {
                prop_assert!(dropped.is_empty());
                let _ = head;
                served += 1;
            }
            prop_assert_eq!(served, n);
            prop_assert_eq!(q.shed_sojourn(), 0);
        }
    }
}
