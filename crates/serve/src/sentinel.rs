//! Overload guardrails for the serving stack.
//!
//! KRISP's value proposition is SLO-preserving co-location, but a server
//! that admits everything degrades *everyone* once offered load exceeds
//! capacity. The sentinel layers four deterministic guardrails over the
//! robustness stack:
//!
//! 1. **Token-bucket admission** ([`TokenBucket`]) — per-worker arrival
//!    caps with bounded burst, refilled from simulation time, so open-loop
//!    overload is rejected at the door instead of queued into staleness.
//! 2. **CoDel queue management** — sojourn-time shedding on the
//!    [`crate::RequestQueue`] (see [`krisp_sim::CoDel`]), configured here.
//! 3. **Brownout right-sizing** ([`BrownoutController`]) — a hysteresis
//!    state machine Normal→Brownout→Shed driven by p95-vs-deadline
//!    headroom; under pressure it deliberately *widens* per-kernel masks
//!    toward full-device partitions (trading KRISP's packing efficiency
//!    for latency headroom) and narrows back when headroom recovers.
//! 4. **Retry budgets** — the runtime-level
//!    [`krisp_runtime::RetryBudget`], plumbed through
//!    [`SentinelConfig::retry_budget`], so watchdog retries cannot storm
//!    a saturated device.
//!
//! Guardrails 1 and 3 compose into the per-arrival [`AdmissionChain`];
//! guardrails 2 and 4 are enforced downstream (at dequeue and in the
//! runtime respectively).
//!
//! Everything is driven by simulation time and observed latencies only:
//! same seed, same trace, same transitions — which is what lets the
//! chaos fuzzer (`crates/chaos`) replay sentinel behavior bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use krisp_serve_core::sentinel::{BrownoutConfig, BrownoutController, SentinelState};
//!
//! let mut ctl = BrownoutController::new(BrownoutConfig {
//!     window: 8,
//!     min_samples: 4,
//!     ..BrownoutConfig::default()
//! });
//! for _ in 0..4 {
//!     assert_eq!(ctl.observe(0.2), None); // plenty of headroom
//! }
//! // Sustained latencies beyond the deadline walk the machine to Shed.
//! assert_eq!(
//!     ctl.observe(1.5),
//!     Some((SentinelState::Normal, SentinelState::Brownout))
//! );
//! assert_eq!(
//!     ctl.observe(1.5),
//!     Some((SentinelState::Brownout, SentinelState::Shed))
//! );
//! ```

use std::collections::VecDeque;

use krisp_runtime::{MaskWidening, RetryBudgetConfig};
use krisp_sim::{CoDelConfig, SimTime};

/// Token-bucket admission knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketConfig {
    /// Sustained admission rate, requests per simulated second.
    pub rate_per_s: f64,
    /// Bucket depth: how many requests may be admitted in a burst.
    pub burst: f64,
}

impl Default for TokenBucketConfig {
    /// 200 req/s with a burst of 10.
    fn default() -> TokenBucketConfig {
        TokenBucketConfig {
            rate_per_s: 200.0,
            burst: 10.0,
        }
    }
}

/// A deterministic token bucket refilled from simulation time.
///
/// # Examples
///
/// ```
/// use krisp_serve_core::sentinel::{TokenBucket, TokenBucketConfig};
/// use krisp_sim::SimTime;
///
/// let mut b = TokenBucket::new(TokenBucketConfig { rate_per_s: 1_000.0, burst: 1.0 });
/// assert!(b.try_admit(SimTime::ZERO)); // the bucket starts full
/// assert!(!b.try_admit(SimTime::ZERO)); // burst of one: empty now
/// // One millisecond refills one token at 1000 req/s.
/// assert!(b.try_admit(SimTime::from_nanos(1_000_000)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    cfg: TokenBucketConfig,
    tokens: f64,
    last: SimTime,
    admitted: u64,
    rejected: u64,
}

impl TokenBucket {
    /// A full bucket at simulation time zero.
    pub fn new(cfg: TokenBucketConfig) -> TokenBucket {
        TokenBucket {
            tokens: cfg.burst,
            cfg,
            last: SimTime::ZERO,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Admits or rejects one arrival at `now` (monotone per bucket).
    pub fn try_admit(&mut self, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.cfg.rate_per_s).min(self.cfg.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.admitted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }
}

/// The brownout hysteresis states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SentinelState {
    /// Plenty of headroom: exact KRISP right-sizing, full admission.
    #[default]
    Normal,
    /// Headroom eroding: masks are widened ([`MaskWidening::Factor`]) to
    /// buy latency at the cost of packing efficiency.
    Brownout,
    /// Past the deadline at p95: masks go full-device and new arrivals
    /// are shed unless the worker is completely idle. Queued work keeps
    /// draining, so the controller keeps observing and can leave Shed —
    /// the state never deadlocks.
    Shed,
}

impl SentinelState {
    /// Stable integer code for events/metrics (0 normal, 1 brownout,
    /// 2 shed).
    pub fn code(&self) -> u32 {
        match self {
            SentinelState::Normal => 0,
            SentinelState::Brownout => 1,
            SentinelState::Shed => 2,
        }
    }
}

/// Brownout state-machine knobs. All thresholds are ratios of the
/// observed p95 latency to the deadline (1.0 = p95 exactly at the
/// deadline); exits sit below their entries, so the machine has
/// hysteresis and cannot flap on a single sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Sliding-window length in latency samples.
    pub window: usize,
    /// Samples required before any transition is considered.
    pub min_samples: usize,
    /// Normal→Brownout when `p95/deadline >=` this.
    pub enter_brownout: f64,
    /// Brownout→Shed when `p95/deadline >=` this.
    pub enter_shed: f64,
    /// Brownout→Normal when `p95/deadline <=` this.
    pub exit_brownout: f64,
    /// Shed→Brownout when `p95/deadline <=` this.
    pub exit_shed: f64,
    /// [`MaskWidening::Factor`] percentage applied in Brownout (≥ 100).
    pub widen_pct: u32,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            window: 64,
            min_samples: 16,
            enter_brownout: 0.7,
            enter_shed: 1.0,
            exit_brownout: 0.45,
            exit_shed: 0.85,
            widen_pct: 150,
        }
    }
}

/// The hysteresis state machine. Feed it one latency/deadline ratio per
/// completed request; it reports at most one transition per observation
/// (Normal→Shed always passes through Brownout, one step per sample).
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    window: VecDeque<f64>,
    state: SentinelState,
    transitions: u64,
}

impl BrownoutController {
    /// A controller in [`SentinelState::Normal`] with an empty window.
    ///
    /// # Panics
    ///
    /// Panics unless `window >= min_samples >= 1` and the exit
    /// thresholds sit strictly below their entries (no hysteresis band
    /// means flapping).
    pub fn new(cfg: BrownoutConfig) -> BrownoutController {
        assert!(
            cfg.window >= cfg.min_samples && cfg.min_samples >= 1,
            "window must hold at least min_samples >= 1"
        );
        assert!(
            cfg.exit_brownout < cfg.enter_brownout && cfg.exit_shed < cfg.enter_shed,
            "exit thresholds must sit below entries (hysteresis)"
        );
        BrownoutController {
            cfg,
            window: VecDeque::with_capacity(cfg.window),
            state: SentinelState::Normal,
            transitions: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> SentinelState {
        self.state
    }

    /// Total transitions taken.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The widening the runtime should apply in the current state.
    pub fn widening(&self) -> MaskWidening {
        match self.state {
            SentinelState::Normal => MaskWidening::None,
            SentinelState::Brownout => MaskWidening::Factor(self.cfg.widen_pct.max(100)),
            SentinelState::Shed => MaskWidening::FullDevice,
        }
    }

    /// In [`SentinelState::Shed`], should an arrival to a worker with
    /// `queue_depth` waiting requests (and `busy` inference in flight)
    /// be admitted? Only a completely idle worker accepts work, so a
    /// drained system keeps generating observations and can leave Shed.
    pub fn admit_in_shed(&self, queue_depth: usize, busy: bool) -> bool {
        self.state != SentinelState::Shed || (queue_depth == 0 && !busy)
    }

    /// The p95 of the sliding window, as a ratio to the deadline.
    /// Deterministic: sorted copy, `ceil(0.95 n)`-th order statistic.
    pub fn p95_ratio(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64) * 0.95).ceil() as usize;
        v[idx.clamp(1, v.len()) - 1]
    }

    /// Records one completed request's `latency / deadline` ratio and
    /// steps the state machine, returning `Some((from, to))` on a
    /// transition.
    pub fn observe(&mut self, ratio: f64) -> Option<(SentinelState, SentinelState)> {
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(ratio);
        if self.window.len() < self.cfg.min_samples {
            return None;
        }
        let p95 = self.p95_ratio();
        let next = match self.state {
            SentinelState::Normal if p95 >= self.cfg.enter_brownout => SentinelState::Brownout,
            SentinelState::Brownout if p95 >= self.cfg.enter_shed => SentinelState::Shed,
            SentinelState::Brownout if p95 <= self.cfg.exit_brownout => SentinelState::Normal,
            SentinelState::Shed if p95 <= self.cfg.exit_shed => SentinelState::Brownout,
            current => current,
        };
        if next == self.state {
            return None;
        }
        let from = self.state;
        self.state = next;
        self.transitions += 1;
        Some((from, next))
    }
}

/// The sentinel's composite configuration: every guardrail is optional
/// and independently wired, so experiments can ablate them one by one.
/// The default is fully inert (equivalent to no sentinel at all).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SentinelConfig {
    /// Per-worker token-bucket admission.
    pub admission: Option<TokenBucketConfig>,
    /// CoDel sojourn-time shedding on the request queues.
    pub codel: Option<CoDelConfig>,
    /// Brownout right-sizing state machine.
    pub brownout: Option<BrownoutConfig>,
    /// Runtime-level watchdog retry budget.
    pub retry_budget: Option<RetryBudgetConfig>,
}

impl SentinelConfig {
    /// All four guardrails at their defaults, with admission sized to
    /// `rate_per_s` per worker.
    pub fn standard(rate_per_s: f64) -> SentinelConfig {
        SentinelConfig {
            admission: Some(TokenBucketConfig {
                rate_per_s,
                ..TokenBucketConfig::default()
            }),
            codel: Some(CoDelConfig::default()),
            brownout: Some(BrownoutConfig::default()),
            retry_budget: Some(RetryBudgetConfig::default()),
        }
    }

    /// True when every guardrail is disabled.
    pub fn is_inert(&self) -> bool {
        self.admission.is_none()
            && self.codel.is_none()
            && self.brownout.is_none()
            && self.retry_budget.is_none()
    }
}

/// The per-arrival admission chain, composing the sentinel's front-door
/// guardrails in their canonical order:
///
/// 1. **Shed-state policy** — in [`SentinelState::Shed`] only a
///    completely idle worker accepts work. A Shed rejection burns **no**
///    admission token (the bucket is not even consulted), so recovery
///    credit is preserved for the drain.
/// 2. **Token bucket** — the per-worker rate cap.
///
/// CoDel (at dequeue) and the retry budget (in the runtime) sit behind
/// the chain; the brownout controller is carried here so the drive loop
/// has one place to feed completions and read the mask widening.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdmissionChain {
    /// Brownout hysteresis controller (`None` when not configured).
    pub brownout: Option<BrownoutController>,
    /// Per-worker admission buckets (`None` when not configured).
    pub buckets: Option<Vec<TokenBucket>>,
}

impl AdmissionChain {
    /// Builds the chain for `workers` workers from an optional sentinel
    /// config (a `None` config yields a fully transparent chain).
    pub fn new(cfg: Option<&SentinelConfig>, workers: usize) -> AdmissionChain {
        AdmissionChain {
            brownout: cfg.and_then(|s| s.brownout).map(BrownoutController::new),
            buckets: cfg.and_then(|s| {
                s.admission
                    .map(|tb| (0..workers).map(|_| TokenBucket::new(tb)).collect())
            }),
        }
    }

    /// Decides one arrival at worker `wi` (whose queue currently holds
    /// `queue_depth` requests, with `busy` inference in flight). Returns
    /// true to admit. Exactly one token is consumed per admitted or
    /// rate-rejected arrival; Shed-state rejections consume none.
    pub fn admit(&mut self, wi: usize, now: SimTime, queue_depth: usize, busy: bool) -> bool {
        let shed_state = self
            .brownout
            .as_ref()
            .is_some_and(|c| !c.admit_in_shed(queue_depth, busy));
        let rate_reject =
            !shed_state && !self.buckets.as_mut().is_none_or(|b| b[wi].try_admit(now));
        !(shed_state || rate_reject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        let mut b = TokenBucket::new(TokenBucketConfig {
            rate_per_s: 100.0,
            burst: 2.0,
        });
        assert!(b.try_admit(SimTime::ZERO));
        assert!(b.try_admit(SimTime::ZERO));
        assert!(!b.try_admit(SimTime::ZERO));
        // 10 ms at 100/s refills exactly one token.
        let t = SimTime::from_nanos(10_000_000);
        assert!(b.try_admit(t));
        assert!(!b.try_admit(t));
        assert_eq!((b.admitted(), b.rejected()), (3, 2));
    }

    #[test]
    fn token_bucket_burst_caps_refill() {
        let mut b = TokenBucket::new(TokenBucketConfig {
            rate_per_s: 1_000.0,
            burst: 3.0,
        });
        // A long idle period cannot bank more than `burst` tokens.
        let t = SimTime::from_nanos(10_000_000_000);
        for _ in 0..3 {
            assert!(b.try_admit(t));
        }
        assert!(!b.try_admit(t));
    }

    fn test_cfg() -> BrownoutConfig {
        BrownoutConfig {
            window: 8,
            min_samples: 4,
            ..BrownoutConfig::default()
        }
    }

    #[test]
    fn golden_full_cycle_normal_brownout_shed_normal() {
        // S3: the canonical overload-then-recovery trajectory, pinned
        // transition by transition.
        let mut ctl = BrownoutController::new(test_cfg());
        let mut transitions = Vec::new();
        // Healthy traffic: no transitions.
        for _ in 0..6 {
            assert_eq!(ctl.observe(0.2), None);
        }
        // Overload: latencies blow through the deadline.
        for _ in 0..4 {
            if let Some(t) = ctl.observe(1.4) {
                transitions.push(t);
            }
        }
        // Recovery: the system drains and latencies collapse.
        for _ in 0..12 {
            if let Some(t) = ctl.observe(0.1) {
                transitions.push(t);
            }
        }
        use SentinelState::{Brownout, Normal, Shed};
        assert_eq!(
            transitions,
            vec![
                (Normal, Brownout),
                (Brownout, Shed),
                (Shed, Brownout),
                (Brownout, Normal),
            ]
        );
        assert_eq!(ctl.transitions(), 4);
        assert_eq!(ctl.state(), Normal);
    }

    #[test]
    fn one_step_per_observation() {
        // Even an instant catastrophe walks Normal→Brownout→Shed over
        // two observations, never jumping.
        let mut ctl = BrownoutController::new(test_cfg());
        for _ in 0..3 {
            ctl.observe(0.1);
        }
        assert_eq!(
            ctl.observe(5.0),
            Some((SentinelState::Normal, SentinelState::Brownout))
        );
        assert_eq!(
            ctl.observe(5.0),
            Some((SentinelState::Brownout, SentinelState::Shed))
        );
    }

    #[test]
    fn widening_tracks_state() {
        let mut ctl = BrownoutController::new(test_cfg());
        assert_eq!(ctl.widening(), MaskWidening::None);
        for _ in 0..4 {
            ctl.observe(1.4);
        }
        assert_eq!(ctl.state(), SentinelState::Brownout);
        assert_eq!(ctl.widening(), MaskWidening::Factor(150));
        ctl.observe(1.4);
        assert_eq!(ctl.state(), SentinelState::Shed);
        assert_eq!(ctl.widening(), MaskWidening::FullDevice);
    }

    #[test]
    fn shed_admits_only_idle_workers() {
        let mut ctl = BrownoutController::new(test_cfg());
        assert!(ctl.admit_in_shed(10, true)); // Normal: anything goes
        for _ in 0..5 {
            ctl.observe(2.0);
        }
        assert_eq!(ctl.state(), SentinelState::Shed);
        assert!(!ctl.admit_in_shed(1, false));
        assert!(!ctl.admit_in_shed(0, true));
        assert!(ctl.admit_in_shed(0, false));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn flapping_thresholds_are_rejected() {
        BrownoutController::new(BrownoutConfig {
            exit_brownout: 0.9,
            enter_brownout: 0.7,
            ..BrownoutConfig::default()
        });
    }

    #[test]
    fn standard_config_is_fully_armed() {
        let c = SentinelConfig::standard(125.0);
        assert!(!c.is_inert());
        assert!(SentinelConfig::default().is_inert());
        assert_eq!(c.admission.unwrap().rate_per_s, 125.0);
    }

    #[test]
    fn empty_chain_admits_everything() {
        let mut chain = AdmissionChain::new(None, 4);
        for wi in 0..4 {
            assert!(chain.admit(wi, SimTime::ZERO, 100, true));
        }
    }

    #[test]
    fn shed_state_rejection_burns_no_token() {
        // A chain in Shed with a busy worker must reject without
        // touching the bucket; an idle worker then still has the token.
        let mut chain = AdmissionChain::new(
            Some(&SentinelConfig {
                admission: Some(TokenBucketConfig {
                    rate_per_s: 1.0,
                    burst: 1.0,
                }),
                brownout: Some(BrownoutConfig {
                    window: 4,
                    min_samples: 2,
                    ..BrownoutConfig::default()
                }),
                ..SentinelConfig::default()
            }),
            1,
        );
        let ctl = chain.brownout.as_mut().expect("brownout configured");
        while ctl.state() != SentinelState::Shed {
            ctl.observe(5.0);
        }
        assert!(!chain.admit(0, SimTime::ZERO, 1, true), "Shed must reject");
        let bucket = &chain.buckets.as_ref().expect("bucket")[0];
        assert_eq!(
            (bucket.admitted(), bucket.rejected()),
            (0, 0),
            "Shed rejection consulted the bucket"
        );
        assert!(
            chain.admit(0, SimTime::ZERO, 0, false),
            "idle worker admits"
        );
    }

    #[test]
    fn rate_rejection_counts_on_the_bucket() {
        let mut chain = AdmissionChain::new(
            Some(&SentinelConfig {
                admission: Some(TokenBucketConfig {
                    rate_per_s: 1.0,
                    burst: 1.0,
                }),
                ..SentinelConfig::default()
            }),
            1,
        );
        assert!(chain.admit(0, SimTime::ZERO, 0, false));
        assert!(!chain.admit(0, SimTime::ZERO, 0, false));
        let bucket = &chain.buckets.as_ref().expect("bucket")[0];
        assert_eq!((bucket.admitted(), bucket.rejected()), (1, 1));
    }
}
