//! # krisp-chaos — deterministic chaos fuzzing for the serving stack
//!
//! Property-based robustness testing for the whole KRISP stack: each
//! **fuzz case** is a randomized-but-seeded serving experiment (policy,
//! co-located models, open-loop load, guardrails, and a
//! [`krisp_sim::FaultPlan`]) that is run end to end against a set of
//! **invariant oracles** — flow conservation, monotone simulation time,
//! valid sentinel transitions, bit-identical replay, and liveness (see
//! [`oracle`]). When an oracle trips, the [`mod@shrink`] module reduces the
//! case to a minimal reproducer and writes it to
//! `results/chaos_repros/`, replayable with one command:
//!
//! ```text
//! cargo run --release -p krisp-chaos -- fuzz --cases 200 --seed 1
//! cargo run --release -p krisp-chaos -- replay results/chaos_repros/<file>.json
//! ```
//!
//! Everything is deterministic: case generation uses the vendored
//! [`rand`] shim, the simulator is a discrete-event machine, and the
//! shrinker is a greedy fixpoint — the same seed produces the same
//! case, verdict, and reproducer on every machine, which is what lets
//! CI hand a failing artifact to a laptop.
//!
//! ```rust
//! use krisp_chaos::{check_case, FuzzCase, GenConfig};
//!
//! let case = FuzzCase::generate(7, &GenConfig { smoke: true });
//! assert!(check_case(&case).is_none(), "seed 7 upholds every invariant");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod oracle;
pub mod shrink;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

pub use case::{FuzzCase, GenConfig, MODEL_POOL, POLICY_POOL};
pub use oracle::{check_case, Violation};
pub use shrink::shrink;

/// Default directory for shrunken reproducers, relative to the
/// workspace root.
pub const REPRO_DIR: &str = "results/chaos_repros";

/// Repro file format version, bumped on incompatible schema changes.
pub const REPRO_VERSION: u64 = 1;

/// A shrunken reproducer as persisted to disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Schema version ([`REPRO_VERSION`]).
    pub version: u64,
    /// Short violation kind ([`Violation::kind`]).
    pub violation_kind: String,
    /// Human-readable violation description.
    pub violation: String,
    /// The minimal failing case.
    pub case: FuzzCase,
}

impl Serialize for Repro {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("violation_kind".to_string(), self.violation_kind.to_value()),
            ("violation".to_string(), self.violation.to_value()),
            ("case".to_string(), self.case.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for Repro {
    fn from_value(v: &serde::Value) -> Result<Repro, serde::de::Error> {
        Ok(Repro {
            version: serde::de::field(v, "version")?,
            violation_kind: serde::de::field(v, "violation_kind")?,
            violation: serde::de::field(v, "violation")?,
            case: serde::de::field(v, "case")?,
        })
    }
}

/// Writes a shrunken reproducer to `dir`, creating it if needed.
/// Returns the file path; the name encodes the seed and violation kind
/// so CI artifacts are self-describing.
pub fn write_repro(dir: &Path, case: &FuzzCase, violation: &Violation) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let repro = Repro {
        version: REPRO_VERSION,
        violation_kind: violation.kind().to_string(),
        violation: violation.to_string(),
        case: case.clone(),
    };
    let path = dir.join(format!("seed{}_{}.json", case.seed, violation.kind()));
    let json = serde_json::to_string_pretty(&repro)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("serialize: {e:?}")))?;
    fs::write(&path, json)?;
    Ok(path)
}

/// Reads a reproducer back from disk.
pub fn read_repro(path: &Path) -> io::Result<Repro> {
    let text = fs::read_to_string(path)?;
    let repro: Repro = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("parse: {e:?}")))?;
    if repro.version != REPRO_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "repro version {} (tool speaks {})",
                repro.version, REPRO_VERSION
            ),
        ));
    }
    Ok(repro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krisp_sim::FaultKind;

    /// End-to-end S5-style proof: an intentionally planted violation is
    /// found, shrunk to a minimal case, persisted, and replays to the
    /// same violation from the file alone.
    #[test]
    fn planted_violation_shrinks_persists_and_replays() {
        let synthetic = |case: &FuzzCase| -> Option<Violation> {
            case.faults
                .events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::RejectMaskApply { .. }))
                .then(|| Violation::Synthetic {
                    detail: "plan contains a reject_mask_apply fault".to_string(),
                })
        };
        let gen = GenConfig { smoke: true };
        let case = (0..300u64)
            .map(|s| FuzzCase::generate(s, &gen))
            .find(|c| c.faults.events().len() >= 3 && synthetic(c).is_some())
            .expect("some seed under 300 yields a 3-fault case with the trigger");

        let (min, violation) = shrink(&case, &synthetic);
        assert_eq!(min.faults.events().len(), 1, "{min:?}");

        let dir = std::env::temp_dir().join("krisp_chaos_test_repros");
        let path = write_repro(&dir, &min, &violation).expect("write repro");
        let back = read_repro(&path).expect("read repro");
        assert_eq!(back.case, min);
        assert_eq!(back.violation_kind, "synthetic");
        // Replaying the persisted case trips the same oracle.
        assert_eq!(synthetic(&back.case), Some(violation));
        fs::remove_file(path).ok();
    }
}
