//! Invariant oracles: what must hold for *every* fuzz case.
//!
//! The oracles deliberately check end-to-end properties of the whole
//! serving stack rather than unit-level behavior:
//!
//! 1. **Flow conservation** — every arrival is accounted for exactly
//!    once: admitted or shed at admission, and every admitted request
//!    completes, is CoDel-shed, times out, fails, or is still in flight
//!    at the horizon ([`krisp_server::FlowCounters::conserved`]). A
//!    lost or duplicated request breaks the identity.
//! 2. **Monotone simulation time** — observability events drain in
//!    non-decreasing timestamp order; time never runs backwards.
//! 3. **Valid sentinel transitions** — the brownout state machine only
//!    moves one step at a time (Normal↔Brownout↔Shed).
//! 4. **Determinism** — the same case replayed produces a bit-identical
//!    serialized result, with or without observability attached.
//! 5. **Progress** — a fault-free case that admits work completes work;
//!    in particular the Shed state must never deadlock the server.

use std::fmt;

use krisp_obs::{EventKind, Obs};
use krisp_server::{oracle_perfdb, run_server, run_server_observed};

use crate::case::FuzzCase;

/// One invariant violation, with enough detail to triage from the
/// reproducer file alone.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The request-flow books do not balance.
    Conservation {
        /// The offending counters, debug-printed.
        detail: String,
    },
    /// Two runs of the same case diverged.
    NonDeterministic {
        /// Which serialized field diverged first.
        detail: String,
    },
    /// An observability event was emitted before its predecessor.
    TimeRegression {
        /// Timestamp of the earlier-drained event, nanoseconds.
        prev_ns: u64,
        /// The regressing timestamp, nanoseconds.
        ts_ns: u64,
    },
    /// A fault-free case admitted work but completed nothing.
    NoProgress {
        /// How many requests were admitted and then stranded.
        admitted: u64,
    },
    /// The brownout controller skipped a state.
    InvalidTransition {
        /// State code before the transition.
        from: u32,
        /// State code after.
        to: u32,
    },
    /// Planted by tests to exercise the shrinker on a known trigger.
    Synthetic {
        /// What the synthetic oracle matched on.
        detail: String,
    },
}

impl Violation {
    /// Stable short name for file names and CI summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Conservation { .. } => "conservation",
            Violation::NonDeterministic { .. } => "non_deterministic",
            Violation::TimeRegression { .. } => "time_regression",
            Violation::NoProgress { .. } => "no_progress",
            Violation::InvalidTransition { .. } => "invalid_transition",
            Violation::Synthetic { .. } => "synthetic",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Conservation { detail } => write!(f, "flow books out of balance: {detail}"),
            Violation::NonDeterministic { detail } => {
                write!(f, "same-seed replay diverged: {detail}")
            }
            Violation::TimeRegression { prev_ns, ts_ns } => {
                write!(f, "event time ran backwards: {prev_ns} -> {ts_ns}")
            }
            Violation::NoProgress { admitted } => {
                write!(
                    f,
                    "{admitted} requests admitted, none completed (fault-free)"
                )
            }
            Violation::InvalidTransition { from, to } => {
                write!(f, "sentinel skipped a state: {from} -> {to}")
            }
            Violation::Synthetic { detail } => write!(f, "synthetic trigger: {detail}"),
        }
    }
}

/// Runs `case` through the full server stack and audits every oracle.
/// Returns the first violation found, or `None` for a clean case.
pub fn check_case(case: &FuzzCase) -> Option<Violation> {
    let mut kinds = case.models.clone();
    kinds.sort();
    kinds.dedup();
    let db = oracle_perfdb(&kinds, &[32]);
    let cfg = case.to_server_config();

    let (obs, sink) = Obs::recording(1 << 16);
    let observed = run_server_observed(&cfg, &db, obs);
    let events = sink.lock().expect("sink").drain();

    // Oracle 2: monotone sim time across the drained event stream.
    let mut prev = 0u64;
    for e in &events {
        if e.ts_ns < prev {
            return Some(Violation::TimeRegression {
                prev_ns: prev,
                ts_ns: e.ts_ns,
            });
        }
        prev = e.ts_ns;
    }

    // Oracle 3: the hysteresis machine moves one step at a time.
    for e in &events {
        if let EventKind::SentinelTransition { from, to, .. } = e.kind {
            if from.abs_diff(to) != 1 {
                return Some(Violation::InvalidTransition { from, to });
            }
        }
    }

    // Oracle 1: conservation over the independently tracked flow books.
    let Some(flow) = observed.flow.as_ref() else {
        return Some(Violation::Conservation {
            detail: "run_server returned no flow counters".to_string(),
        });
    };
    if !flow.conserved() {
        return Some(Violation::Conservation {
            detail: format!("{flow:?}"),
        });
    }

    // Oracle 5: progress. Only asserted for fault-free cases — a
    // straggler window can legitimately pin every kernel past the
    // horizon — and the threshold keeps tiny windows out of scope.
    if case.faults.is_empty() && flow.admitted >= 10 && flow.completed == 0 {
        return Some(Violation::NoProgress {
            admitted: flow.admitted,
        });
    }

    // Oracle 4: bit-identical replay. The second run goes through the
    // plain (observability-disabled) entry point, so this also proves
    // recording is transparent to simulation results.
    let replayed = run_server(&cfg, &db);
    let a = serde_json::to_string(&observed).expect("serialize observed run");
    let b = serde_json::to_string(&replayed).expect("serialize replayed run");
    if a != b {
        let at = a
            .bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.len().min(b.len()));
        let lo = at.saturating_sub(40);
        return Some(Violation::NonDeterministic {
            detail: format!(
                "first divergence at byte {at}: ..{}..",
                &a[lo..(at + 20).min(a.len())]
            ),
        });
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::GenConfig;

    #[test]
    fn smoke_seeds_are_clean() {
        let gen = GenConfig { smoke: true };
        for seed in 0..4u64 {
            let case = FuzzCase::generate(seed, &gen);
            assert_eq!(check_case(&case), None, "seed {seed}: {case:?}");
        }
    }
}
