//! Fuzz-case generation and serialization.
//!
//! A [`FuzzCase`] is a complete, self-contained description of one
//! randomized serving experiment: the policy, the co-located models, the
//! open-loop arrival rate, the guardrail configuration, and a
//! [`FaultPlan`]. Cases are generated from a single `u64` seed through
//! the vendored deterministic [`rand`] shim, so the same seed always
//! yields the same case on every machine — the property the whole
//! shrink-and-replay workflow rests on.

use std::str::FromStr;

use krisp::Policy;
use krisp_models::ModelKind;
use krisp_runtime::WatchdogConfig;
use krisp_server::{Arrival, SentinelConfig, ServerConfig};
use krisp_sim::{CuMask, FaultPlan, GpuTopology, QueueId, SimDuration, SimTime};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Models the fuzzer draws workers from. Restricted to the lighter end
/// of the zoo so a single case simulates in well under a second; the
/// invariants under test are model-agnostic.
pub const MODEL_POOL: [ModelKind; 4] = [
    ModelKind::Squeezenet,
    ModelKind::Shufflenet,
    ModelKind::Albert,
    ModelKind::Alexnet,
];

/// Policies the fuzzer exercises: the two static baselines plus the
/// kernel-scoped KRISP-I path (which covers the mask-apply machinery the
/// `reject_mask_apply` fault targets).
pub const POLICY_POOL: [Policy; 3] = [Policy::MpsDefault, Policy::StaticEqual, Policy::KrispI];

/// One randomized serving experiment, reproducible from `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Seed for the simulation RNG (kernel jitter, arrivals).
    pub seed: u64,
    /// Spatial-partitioning policy.
    pub policy: Policy,
    /// One model per worker.
    pub models: Vec<ModelKind>,
    /// Open-loop Poisson arrival rate per worker.
    pub rps_per_worker: f64,
    /// Measurement-window length, milliseconds.
    pub duration_ms: u64,
    /// Per-worker queue bound (`None` = unbounded).
    pub queue_capacity: Option<usize>,
    /// Per-request deadline, milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Sentinel guardrails: `Some(rate)` arms the full
    /// [`SentinelConfig::standard`] stack with that admission rate.
    pub sentinel_rate: Option<f64>,
    /// Arm the kernel watchdog (straggler abort + budgeted retries).
    pub watchdog: bool,
    /// Deterministic fault schedule.
    pub faults: FaultPlan,
}

/// Knobs for case generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Smoke mode: shorter windows and fewer workers, for CI.
    pub smoke: bool,
}

impl GenConfig {
    /// Reads `KRISP_SMOKE` from the environment.
    pub fn from_env() -> GenConfig {
        GenConfig {
            smoke: std::env::var("KRISP_SMOKE").is_ok_and(|v| v != "0"),
        }
    }
}

impl FuzzCase {
    /// Generates the case for `case_seed` deterministically.
    pub fn generate(case_seed: u64, gen: &GenConfig) -> FuzzCase {
        let mut rng = StdRng::seed_from_u64(case_seed ^ 0x5EED_CA5E);
        let topo = GpuTopology::MI50;
        let n_workers = if gen.smoke {
            rng.gen_range(1..3usize)
        } else {
            rng.gen_range(1..4usize)
        };
        let models = (0..n_workers)
            .map(|_| MODEL_POOL[rng.gen_range(0..MODEL_POOL.len())])
            .collect::<Vec<_>>();
        let policy = POLICY_POOL[rng.gen_range(0..POLICY_POOL.len())];
        let rps_per_worker = rng.gen_range(20.0..400.0f64);
        let duration_ms = if gen.smoke {
            rng.gen_range(80..160u64)
        } else {
            rng.gen_range(150..400u64)
        };
        let queue_capacity = if rng.gen_range(0..2u32) == 0 {
            Some(rng.gen_range(2..16usize))
        } else {
            None
        };
        let deadline_ms = if rng.gen_range(0..2u32) == 0 {
            Some(rng.gen_range(10..60u64))
        } else {
            None
        };
        let sentinel_rate = if rng.gen_range(0..2u32) == 0 {
            Some(rng.gen_range(50.0..300.0f64))
        } else {
            None
        };
        let watchdog = rng.gen_range(0..4u32) != 0;

        let horizon_ns = (duration_ms + WARMUP_MS) * 1_000_000;
        let n_faults = rng.gen_range(0..5usize);
        let mut faults = FaultPlan::new();
        for _ in 0..n_faults {
            let at = SimTime::from_nanos(rng.gen_range(0..horizon_ns));
            let queue = QueueId(rng.gen_range(0..n_workers as u32));
            let window = SimDuration::from_millis(rng.gen_range(5..80u64));
            faults = match rng.gen_range(0..4u32) {
                0 => faults.fail_cus(at, CuMask::first_n(rng.gen_range(1..20u16), &topo)),
                1 => faults.stall_queue(at, queue, window),
                2 => {
                    let factor = rng.gen_range(2.0..16.0f64);
                    if rng.gen_range(0..2u32) == 0 {
                        faults.straggle_all(at, factor, window)
                    } else {
                        faults.straggle_queue(at, queue, factor, window)
                    }
                }
                _ => faults.reject_mask_apply(at, queue, window),
            };
        }

        FuzzCase {
            seed: case_seed,
            policy,
            models,
            rps_per_worker,
            duration_ms,
            queue_capacity,
            deadline_ms,
            sentinel_rate,
            watchdog,
            faults,
        }
    }

    /// Lowers the case to a runnable [`ServerConfig`].
    pub fn to_server_config(&self) -> ServerConfig {
        let mut cfg = ServerConfig::closed_loop(self.policy, self.models.clone(), 32);
        cfg.arrival = Arrival::Poisson {
            rps_per_worker: self.rps_per_worker,
        };
        cfg.seed = self.seed;
        cfg.warmup = Some(SimDuration::from_millis(WARMUP_MS));
        cfg.duration = Some(SimDuration::from_millis(self.duration_ms));
        cfg.queue_capacity = self.queue_capacity;
        cfg.deadline = self.deadline_ms.map(SimDuration::from_millis);
        cfg.sentinel = self.sentinel_rate.map(SentinelConfig::standard);
        cfg.watchdog = self.watchdog.then(WatchdogConfig::default);
        cfg.faults = self.faults.clone();
        cfg
    }
}

/// Warmup span prepended to every fuzz case, milliseconds.
pub const WARMUP_MS: u64 = 20;

impl Serialize for FuzzCase {
    fn to_value(&self) -> serde::Value {
        let models: Vec<String> = self.models.iter().map(|m| m.name().to_string()).collect();
        serde::Value::Object(vec![
            ("seed".to_string(), self.seed.to_value()),
            ("policy".to_string(), self.policy.to_string().to_value()),
            ("models".to_string(), models.to_value()),
            ("rps_per_worker".to_string(), self.rps_per_worker.to_value()),
            ("duration_ms".to_string(), self.duration_ms.to_value()),
            ("queue_capacity".to_string(), self.queue_capacity.to_value()),
            ("deadline_ms".to_string(), self.deadline_ms.to_value()),
            ("sentinel_rate".to_string(), self.sentinel_rate.to_value()),
            ("watchdog".to_string(), self.watchdog.to_value()),
            ("faults".to_string(), self.faults.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for FuzzCase {
    fn from_value(v: &serde::Value) -> Result<FuzzCase, serde::de::Error> {
        let policy_name: String = serde::de::field(v, "policy")?;
        let policy = Policy::from_str(&policy_name)
            .map_err(|_| serde::de::Error::custom(format!("unknown policy `{policy_name}`")))?;
        let model_names: Vec<String> = serde::de::field(v, "models")?;
        let models = model_names
            .iter()
            .map(|n| {
                ModelKind::from_str(n)
                    .map_err(|_| serde::de::Error::custom(format!("unknown model `{n}`")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FuzzCase {
            seed: serde::de::field(v, "seed")?,
            policy,
            models,
            rps_per_worker: serde::de::field(v, "rps_per_worker")?,
            duration_ms: serde::de::field(v, "duration_ms")?,
            queue_capacity: serde::de::field(v, "queue_capacity")?,
            deadline_ms: serde::de::field(v, "deadline_ms")?,
            sentinel_rate: serde::de::field(v, "sentinel_rate")?,
            watchdog: serde::de::field(v, "watchdog")?,
            faults: serde::de::field(v, "faults")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let gen = GenConfig { smoke: true };
        let a = FuzzCase::generate(42, &gen);
        let b = FuzzCase::generate(42, &gen);
        assert_eq!(a, b);
        let c = FuzzCase::generate(43, &gen);
        assert_ne!(a, c);
    }

    #[test]
    fn serde_round_trip() {
        let gen = GenConfig { smoke: false };
        for seed in [0u64, 7, 99, 12345] {
            let case = FuzzCase::generate(seed, &gen);
            let json = serde_json::to_string_pretty(&case).expect("serialize");
            let back: FuzzCase = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, case, "round trip for seed {seed}");
        }
    }

    #[test]
    fn lowering_arms_requested_guardrails() {
        let case = FuzzCase {
            seed: 1,
            policy: Policy::KrispI,
            models: vec![ModelKind::Squeezenet],
            rps_per_worker: 100.0,
            duration_ms: 100,
            queue_capacity: Some(8),
            deadline_ms: Some(25),
            sentinel_rate: Some(120.0),
            watchdog: true,
            faults: FaultPlan::new(),
        };
        let cfg = case.to_server_config();
        assert_eq!(cfg.queue_capacity, Some(8));
        assert!(cfg.sentinel.is_some());
        assert!(cfg.watchdog.is_some());
        assert_eq!(cfg.deadline, Some(SimDuration::from_millis(25)));
    }
}
