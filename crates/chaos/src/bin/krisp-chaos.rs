//! Command-line chaos fuzzer.
//!
//! ```text
//! krisp-chaos fuzz [--cases N] [--seed S] [--out DIR]
//! krisp-chaos replay <file>
//! ```
//!
//! `fuzz` runs `N` seeded cases (`S`, `S+1`, …) through the invariant
//! oracles; on the first violation it shrinks to a minimal reproducer,
//! writes it under `--out` (default `results/chaos_repros/`), and exits
//! non-zero. `replay` re-runs a persisted reproducer and reports
//! whether the violation still triggers. Set `KRISP_SMOKE=1` for the
//! shorter CI-sized case windows.

use std::path::PathBuf;
use std::process::ExitCode;

use krisp_chaos::{check_case, read_repro, shrink, write_repro, FuzzCase, GenConfig, REPRO_DIR};

fn usage() -> ExitCode {
    eprintln!("usage: krisp-chaos fuzz [--cases N] [--seed S] [--out DIR]");
    eprintln!("       krisp-chaos replay <file>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => fuzz(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut cases = 200u64;
    let mut seed = 1u64;
    let mut out = PathBuf::from(REPRO_DIR);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return usage();
        };
        match flag.as_str() {
            "--cases" => match value.parse() {
                Ok(n) => cases = n,
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(s) => seed = s,
                Err(_) => return usage(),
            },
            "--out" => out = PathBuf::from(value),
            _ => return usage(),
        }
    }

    let gen = GenConfig::from_env();
    println!(
        "krisp-chaos: fuzzing {cases} cases from seed {seed} (smoke={})",
        gen.smoke
    );
    for i in 0..cases {
        let case_seed = seed + i;
        let case = FuzzCase::generate(case_seed, &gen);
        if let Some(violation) = check_case(&case) {
            eprintln!("seed {case_seed}: VIOLATION: {violation}");
            eprintln!("shrinking...");
            let (min, min_violation) = shrink(&case, &check_case);
            match write_repro(&out, &min, &min_violation) {
                Ok(path) => {
                    eprintln!("minimal reproducer: {}", path.display());
                    eprintln!(
                        "replay with: cargo run --release -p krisp-chaos -- replay {}",
                        path.display()
                    );
                }
                Err(e) => eprintln!("failed to write reproducer: {e}"),
            }
            return ExitCode::FAILURE;
        }
        if (i + 1) % 25 == 0 {
            println!("  {}/{cases} cases clean", i + 1);
        }
    }
    println!("krisp-chaos: all {cases} cases upheld every invariant");
    ExitCode::SUCCESS
}

fn replay(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    let repro = match read_repro(&PathBuf::from(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("krisp-chaos: cannot load {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying seed {} (recorded violation: {})",
        repro.case.seed, repro.violation
    );
    match check_case(&repro.case) {
        Some(violation) => {
            eprintln!("REPRODUCED: {violation}");
            ExitCode::FAILURE
        }
        None => {
            println!("case no longer violates any invariant (fixed?)");
            ExitCode::SUCCESS
        }
    }
}
