//! Greedy shrinking: reduce a failing case to a minimal reproducer.
//!
//! The shrinker is a fixpoint loop of structural simplifications, each
//! accepted only if the supplied check still reports a violation. It is
//! parameterized by the check function rather than hard-wired to
//! [`crate::oracle::check_case`] so tests can drive it with synthetic
//! oracles and assert minimality of the output. Because case execution
//! and generation are deterministic, shrinking is too: the same failing
//! case always shrinks to the same reproducer.

use krisp_sim::FaultPlan;

use crate::case::FuzzCase;
use crate::oracle::Violation;

/// Simplification passes applied per round, cheapest-win first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // Drop one fault event at a time (the classic delta-debug step).
    let events = case.faults.events();
    for skip in 0..events.len() {
        let mut plan = FaultPlan::new();
        for (i, e) in events.iter().enumerate() {
            if i != skip {
                plan = plan.push(e.at, e.kind.clone());
            }
        }
        out.push(FuzzCase {
            faults: plan,
            ..case.clone()
        });
    }

    // Fewer workers.
    if case.models.len() > 1 {
        let mut fewer = case.clone();
        fewer.models.pop();
        out.push(fewer);
    }

    // Disarm optional machinery one knob at a time.
    if case.queue_capacity.is_some() {
        out.push(FuzzCase {
            queue_capacity: None,
            ..case.clone()
        });
    }
    if case.deadline_ms.is_some() {
        out.push(FuzzCase {
            deadline_ms: None,
            ..case.clone()
        });
    }
    if case.sentinel_rate.is_some() {
        out.push(FuzzCase {
            sentinel_rate: None,
            ..case.clone()
        });
    }
    if case.watchdog {
        out.push(FuzzCase {
            watchdog: false,
            ..case.clone()
        });
    }

    // Shorter and lighter.
    if case.duration_ms > 50 {
        out.push(FuzzCase {
            duration_ms: (case.duration_ms / 2).max(50),
            ..case.clone()
        });
    }
    if case.rps_per_worker > 20.0 {
        out.push(FuzzCase {
            rps_per_worker: (case.rps_per_worker / 2.0).max(10.0),
            ..case.clone()
        });
    }

    out
}

/// Shrinks `case` to a local minimum under `check`, returning the
/// reduced case and the violation it still triggers.
///
/// `check` must report a violation for `case` itself; the function
/// panics otherwise, because "shrink a passing case" is always a caller
/// bug.
pub fn shrink(
    case: &FuzzCase,
    check: &dyn Fn(&FuzzCase) -> Option<Violation>,
) -> (FuzzCase, Violation) {
    let mut best = case.clone();
    let mut violation = check(&best).expect("shrink called on a case the check does not fail");
    // Each accepted step strictly simplifies the case, so the loop
    // terminates; the cap is a safety net against a cycling candidate.
    for _ in 0..256 {
        let mut improved = false;
        for cand in candidates(&best) {
            if let Some(v) = check(&cand) {
                best = cand;
                violation = v;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (best, violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::GenConfig;
    use krisp_sim::FaultKind;

    /// Synthetic oracle: "any stall_queue fault present" is a bug.
    fn stall_present(case: &FuzzCase) -> Option<Violation> {
        case.faults
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::StallQueue { .. }))
            .then(|| Violation::Synthetic {
                detail: "plan contains a stall_queue fault".to_string(),
            })
    }

    #[test]
    fn shrinks_to_single_trigger_event() {
        // Find a generated case with >= 2 faults incl. a stall, so the
        // shrinker has real work to do.
        let gen = GenConfig { smoke: true };
        let case = (0..200u64)
            .map(|s| FuzzCase::generate(s, &gen))
            .find(|c| c.faults.events().len() >= 2 && stall_present(c).is_some())
            .expect("some seed under 200 yields a multi-fault case with a stall");

        let (min, v) = shrink(&case, &stall_present);
        assert_eq!(v.kind(), "synthetic");
        // Minimal: exactly the one triggering event survives, and every
        // optional knob is disarmed.
        assert_eq!(min.faults.events().len(), 1, "{min:?}");
        assert!(matches!(
            min.faults.events()[0].kind,
            FaultKind::StallQueue { .. }
        ));
        assert_eq!(min.models.len(), 1);
        assert_eq!(min.queue_capacity, None);
        assert_eq!(min.deadline_ms, None);
        assert_eq!(min.sentinel_rate, None);
        assert!(!min.watchdog);
        // Deterministic: shrinking again lands on the same case.
        let (again, _) = shrink(&case, &stall_present);
        assert_eq!(again, min);
    }

    #[test]
    #[should_panic(expected = "shrink called on a case")]
    fn rejects_passing_case() {
        let case = FuzzCase::generate(0, &GenConfig { smoke: true });
        shrink(&case, &|_| None);
    }
}
