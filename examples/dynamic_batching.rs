//! Dynamic batching under KRISP: individual samples stream in, the
//! front-end forms batches (size or timeout), and because the *formed*
//! batch size changes the kernels actually launched, KRISP re-right-sizes
//! every kernel on the fly — the dynamic behaviour §V argues static
//! trace-driven simulators cannot capture.
//!
//! ```sh
//! cargo run --release --example dynamic_batching
//! ```

use krisp_suite::core::Policy;
use krisp_suite::models::ModelKind;
use krisp_suite::server::{oracle_perfdb, run_server, Arrival, ServerConfig};
use krisp_suite::sim::SimDuration;

fn main() {
    let model = ModelKind::Shufflenet;
    // Profile every batch size the front-end might form.
    let batches: Vec<u32> = (1..=32).collect();
    let perfdb = oracle_perfdb(&[model], &batches);
    println!(
        "profiled {} kernel variants across batch sizes 1..=32",
        perfdb.len()
    );

    println!(
        "\n{:>12} {:>14} {:>12} {:>10}",
        "samples/s", "achieved/s", "p95 ms", "J/sample"
    );
    for rate in [200.0, 1000.0, 3000.0, 6000.0] {
        let mut cfg = ServerConfig::closed_loop(Policy::KrispI, vec![model; 2], 32);
        cfg.arrival = Arrival::OpenBatched {
            samples_per_s: rate,
            max_batch: 32,
            batch_timeout: SimDuration::from_millis(4),
        };
        cfg.duration = Some(SimDuration::from_secs(3));
        let r = run_server(&cfg, &perfdb);
        println!(
            "{:>12.0} {:>14.0} {:>12.1} {:>10.3}",
            rate * 2.0, // two workers
            r.total_rps(),
            r.max_p95_ms().unwrap_or(f64::NAN),
            r.energy_per_inference().unwrap_or(f64::NAN),
        );
    }
    println!("\nat low rates the 4 ms timeout forms small batches (low latency, more");
    println!("energy per sample); near saturation batches fill to 32 and throughput");
    println!("tracks the offered load until the GPU runs out.");
}
