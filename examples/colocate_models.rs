//! Co-locating two different inference models on one GPU — the scenario
//! from the paper's introduction (Fig 1). Compares the five spatial
//! partitioning policies for an `albert` + `resnext101` mix.
//!
//! ```sh
//! cargo run --release --example colocate_models
//! ```

use krisp_suite::core::Policy;
use krisp_suite::models::ModelKind;
use krisp_suite::server::{oracle_perfdb, run_server, ServerConfig};

fn main() {
    let models = vec![ModelKind::Albert, ModelKind::Resnext101];
    let perfdb = oracle_perfdb(&models, &[32]);

    // Isolated references for normalization.
    let mut baselines = Vec::new();
    for &m in &models {
        let r = run_server(
            &ServerConfig::closed_loop(Policy::MpsDefault, vec![m], 32),
            &perfdb,
        );
        println!(
            "isolated {m}: {:.1} req/s, p95 {:.1} ms",
            r.total_rps(),
            r.max_p95_ms().expect("completes")
        );
        baselines.push(r.total_rps());
    }

    println!(
        "\nco-located albert + resnext101 (closed loop, batch 32):\n{:<18} {:>10} {:>12} {:>10} {:>8}",
        "policy", "albert x", "resnext x", "p95 worst", "J/inf"
    );
    for policy in Policy::ALL {
        let r = run_server(
            &ServerConfig::closed_loop(policy, models.clone(), 32),
            &perfdb,
        );
        let w = r.window.as_secs_f64();
        println!(
            "{:<18} {:>10.2} {:>12.2} {:>10.1} {:>8.2}",
            policy.name(),
            r.workers[0].inferences() as f64 / w / baselines[0],
            r.workers[1].inferences() as f64 / w / baselines[1],
            r.max_p95_ms().unwrap_or(f64::NAN),
            r.energy_per_inference().unwrap_or(f64::NAN),
        );
    }
    println!("\nKRISP right-sizes each kernel, so albert's tiny kernels leave CUs for resnext.");
}
