//! Multi-GPU serving: four MI50s behind a least-outstanding router, every
//! device running KRISP-I — the ScaleServe-style deployment scaled out.
//!
//! ```sh
//! cargo run --release --example multi_gpu
//! ```

use krisp_suite::models::ModelKind;
use krisp_suite::server::{oracle_perfdb, run_cluster, ClusterConfig, Routing};
use krisp_suite::sim::SimDuration;

fn main() {
    let models = vec![
        ModelKind::Albert,
        ModelKind::Squeezenet,
        ModelKind::Resnet152,
    ];
    let db = oracle_perfdb(&models, &[32]);

    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>14} | per-GPU completions",
        "GPUs", "offered/s", "served/s", "p95 ms", "energy J"
    );
    for gpus in [1usize, 2, 4] {
        let mut cfg = ClusterConfig::new(gpus, models.clone(), 120.0);
        cfg.routing = Routing::LeastOutstanding;
        cfg.horizon = SimDuration::from_secs(4);
        let r = run_cluster(&cfg, &db);
        println!(
            "{:>5} {:>10.0} {:>10.0} {:>10.1} {:>14.0} | {:?}",
            gpus,
            120.0 * models.len() as f64,
            r.rps,
            r.p95_ms,
            r.energy_j,
            r.per_gpu
        );
    }
    println!("\none GPU saturates under this load; adding devices restores the offered");
    println!("rate and collapses the queueing tail, with KRISP partitioning each GPU.");
}
