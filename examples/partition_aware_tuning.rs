//! Partition-aware kernel selection: a KRISP-aware library tunes its
//! kernel variants per CU budget, not just per input shape. The variant
//! that wins on the full device (work-efficient Winograd) loses inside a
//! tight partition to a bandwidth-bound FFT kernel that barely notices
//! the restriction — an extension the paper's §IV-B performance-database
//! design makes natural.
//!
//! ```sh
//! cargo run --release --example partition_aware_tuning
//! ```

use krisp_suite::core::{crossovers, tune_curve, Profiler, TunableOp};
use krisp_suite::sim::KernelDesc;

fn main() {
    let op = TunableOp::new(
        "conv2d_3x3_s1_fp32",
        vec![
            KernelDesc::new("winograd_f3x2", 6.0e6, 60), // least work, compute-bound
            KernelDesc::new("fft_tiled", 6.6e6, 24).with_bandwidth_floor(0.5), // DRAM-bound
            KernelDesc::new("direct_naive", 9.0e6, 10).with_bandwidth_floor(0.8),
        ],
    );
    let profiler = Profiler::default();
    let curve = tune_curve(&profiler, &op);

    println!("{:>6} {:>14} {:>12}", "CUs", "best variant", "latency");
    for budget in [2u16, 4, 8, 12, 16, 24, 32, 48, 60] {
        let c = &curve[budget as usize - 1];
        println!(
            "{:>6} {:>14} {:>12}",
            budget,
            op.variants[c.variant].name,
            c.latency.to_string()
        );
    }
    println!("\ncrossovers (budget, from -> to):");
    for (budget, from, to) in crossovers(&curve) {
        println!(
            "  at {budget:>2} CUs: {} -> {}",
            op.variants[from].name, op.variants[to].name
        );
    }

    // How much does budget-aware tuning save vs always using the
    // full-device winner?
    let full_winner = curve.last().expect("non-empty").variant;
    let mut worst = 1.0f64;
    for c in &curve {
        let naive =
            profiler.measure_trace(std::slice::from_ref(&op.variants[full_winner]), c.cu_budget);
        worst = worst.max(naive.as_nanos() as f64 / c.latency.as_nanos() as f64);
    }
    println!(
        "\ntuning per partition is up to {worst:.2}x faster than always running the\nfull-device winner inside a restricted partition."
    );
}
