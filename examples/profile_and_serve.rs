//! The full production pipeline: offline kernel profiling at "library
//! installation time", persisting the Required-CUs table to disk,
//! loading it back, and serving with KRISP-I — plus a comparison of the
//! measured table against the workload's ground-truth knees.
//!
//! ```sh
//! cargo run --release --example profile_and_serve
//! ```

use krisp_suite::core::{Policy, Profiler};
use krisp_suite::models::{generate_trace, ModelKind, TraceConfig};
use krisp_suite::runtime::RequiredCusTable;
use krisp_suite::server::{run_server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelKind::Shufflenet;

    // 1. Offline profiling sweep (the expensive, amortized step).
    let profiler = Profiler::default();
    let table = profiler.build_perfdb(&[model], &[32]);
    println!("profiled {} distinct kernels for {model}", table.len());

    // 2. Persist and reload, as a library's performance database would be.
    let path = std::env::temp_dir().join("krisp_example_perfdb.json");
    table.save(&path)?;
    let table = RequiredCusTable::load(&path)?;
    println!("perfdb round-tripped through {}", path.display());

    // 3. How close is the measured table to the ground truth?
    let trace = generate_trace(model, &TraceConfig::default());
    let mut max_err = 0i32;
    for k in &trace {
        let measured = table.lookup(k).expect("profiled") as i32;
        max_err = max_err.max((measured - k.parallelism as i32).abs());
    }
    println!(
        "largest |measured - true knee| across {} kernels: {max_err} CUs",
        trace.len()
    );

    // 4. Serve 4 concurrent workers under KRISP-I using the measured table.
    let r = run_server(
        &ServerConfig::closed_loop(Policy::KrispI, vec![model; 4], 32),
        &table,
    );
    println!(
        "4x {model} under KRISP-I: {:.1} req/s total, worst p95 {:.1} ms, {:.2} J/inf",
        r.total_rps(),
        r.max_p95_ms().expect("completes"),
        r.energy_per_inference().expect("completes"),
    );
    Ok(())
}
