//! Generalizability (§IV-D4): nothing in the stack hard-codes the MI50.
//! Run the same KRISP pipeline on an A100-like device (7 clusters x 16
//! compute units) and watch Algorithm 1 adapt its Conserved layouts.
//!
//! ```sh
//! cargo run --release --example custom_gpu
//! ```

use krisp_suite::core::{select_cus, DistributionPolicy, KrispAllocator};
use krisp_suite::runtime::{PartitionMode, Runtime, RuntimeConfig};
use krisp_suite::sim::{CuKernelCounters, GpuTopology, KernelDesc, MaskAllocator};

fn main() {
    let topo = GpuTopology::A100_LIKE;
    println!("device: {topo}");

    // Conserved layouts adapt to the 16-CU cluster width.
    for n in [10u16, 20, 40, 90] {
        let mask = select_cus(DistributionPolicy::Conserved, n, &topo);
        let layout: Vec<u16> = topo.ses().map(|se| mask.count_in_se(&topo, se)).collect();
        println!("conserved {n:>3} CUs -> per-cluster layout {layout:?}");
    }

    // Algorithm 1 isolates two 50-CU kernels on disjoint clusters.
    let mut counters = CuKernelCounters::new(topo);
    let mut alloc = KrispAllocator::isolated();
    let a = alloc.allocate(50, &counters, &topo);
    counters.assign(&a);
    let b = alloc.allocate(50, &counters, &topo);
    println!(
        "two isolated 50-CU partitions share CUs? {}",
        a.intersects(&b)
    );

    // And the whole runtime stack runs unchanged.
    let mut rt = Runtime::new(RuntimeConfig {
        topology: topo,
        mode: PartitionMode::KernelScopedNative,
        allocator: Box::new(KrispAllocator::isolated()),
        ..RuntimeConfig::default()
    });
    let k = KernelDesc::new("gemm", 1.12e7, 112);
    rt.perfdb_mut().insert(&k, 112);
    let s = rt.create_stream();
    rt.launch(s, k, 0);
    rt.run_to_idle();
    println!(
        "one full-device kernel on the A100-like part: {:.1} us",
        rt.now().as_secs_f64() * 1e6
    );
}
