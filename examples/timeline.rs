//! Visualizing kernel-scoped partitions: a Gantt chart of which CUs each
//! stream's kernels occupy over time, under stream masking vs KRISP-I.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use krisp_suite::core::KrispAllocator;
use krisp_suite::models::{generate_trace, ModelKind, TraceConfig};
use krisp_suite::runtime::{PartitionMode, RtEvent, Runtime, RuntimeConfig};
use krisp_suite::server::oracle_perfdb;
use krisp_suite::sim::TraceLog;

fn record(mode: PartitionMode, title: &str) {
    let perfdb = oracle_perfdb(&[ModelKind::Albert, ModelKind::Alexnet], &[32]);
    let mut rt = Runtime::new(RuntimeConfig {
        mode,
        allocator: Box::new(KrispAllocator::isolated()),
        perfdb: std::sync::Arc::new(perfdb),
        ..RuntimeConfig::default()
    });
    // Two streams: a spiky transformer and a fat CNN.
    let sa = rt.create_stream();
    let sb = rt.create_stream();
    let ta = generate_trace(ModelKind::Albert, &TraceConfig::default());
    let tb = generate_trace(ModelKind::Alexnet, &TraceConfig::default());
    for (i, k) in ta.iter().take(60).enumerate() {
        rt.launch(sa, k.clone(), i as u64);
    }
    for (i, k) in tb.iter().take(8).enumerate() {
        rt.launch(sb, k.clone(), i as u64);
    }
    let mut log = TraceLog::new();
    while let Some(ev) = rt.step() {
        match ev {
            RtEvent::KernelStarted {
                stream,
                tag,
                at,
                mask,
            } => {
                log.record_start(stream.0, tag, at, mask);
            }
            RtEvent::KernelCompleted { stream, tag, at } => {
                log.record_end(stream.0, tag, at);
            }
            RtEvent::TimerFired { .. }
            | RtEvent::CusFailed { .. }
            | RtEvent::KernelFailed { .. } => {}
        }
    }
    println!("\n=== {title} ===");
    println!("(rows: CUs top-down; A = albert stream, B = alexnet stream, # = shared)\n");
    print!("{}", log.gantt(&rt.topology(), 100));
    let profile = log.occupancy_profile(&rt.topology(), 10);
    let mean = profile.iter().sum::<f64>() / profile.len() as f64;
    println!("mean occupied fraction: {:.0}%", mean * 100.0);
}

fn main() {
    record(
        PartitionMode::StreamMasking,
        "stream masking (both streams own the whole device)",
    );
    record(
        PartitionMode::KernelScopedNative,
        "KRISP-I (each kernel right-sized and isolated)",
    );
    println!("\nUnder KRISP the footprints change at every kernel boundary and the");
    println!("streams never share a CU; under stream masking everything overlaps.");
}
