//! Quickstart: profile a model's kernels, install the Required-CUs
//! table, and serve inference with KRISP's kernel-scoped partitions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use krisp_suite::core::{KrispAllocator, Profiler};
use krisp_suite::models::{generate_trace, ModelKind, TraceConfig};
use krisp_suite::runtime::{PartitionMode, Runtime, RuntimeConfig};

fn main() {
    // 1. Offline profiling (the paper amortizes this into GPU-library
    //    installation): find every kernel's minimum required CUs.
    let profiler = Profiler::default();
    let perfdb = profiler.build_perfdb(&[ModelKind::Squeezenet], &[32]);
    println!("profiled {} distinct kernels", perfdb.len());

    // 2. Bring up a KRISP-enabled runtime: kernel launches are
    //    intercepted, right-sized from the table, and enforced by the
    //    packet processor running Algorithm 1 with isolation (KRISP-I).
    let mut rt = Runtime::new(RuntimeConfig {
        mode: PartitionMode::KernelScopedNative,
        allocator: Box::new(KrispAllocator::isolated()),
        perfdb: std::sync::Arc::new(perfdb),
        ..RuntimeConfig::default()
    });

    // 3. Serve one inference pass and watch the partitions move.
    let stream = rt.create_stream();
    let trace = generate_trace(ModelKind::Squeezenet, &TraceConfig::default());
    println!("launching {} kernels...", trace.len());
    for (i, kernel) in trace.iter().enumerate() {
        rt.launch(stream, kernel.clone(), i as u64);
    }
    let mut distinct_sizes = std::collections::BTreeSet::new();
    while let Some(ev) = rt.step() {
        if let krisp_suite::runtime::RtEvent::KernelStarted { mask, .. } = ev {
            distinct_sizes.insert(mask.count());
        }
    }
    println!(
        "inference latency: {:.2} ms (Table III: 8 ms), energy {:.2} J",
        rt.now().as_secs_f64() * 1e3,
        rt.energy_joules()
    );
    println!("kernel partitions used: {distinct_sizes:?} CUs — kernel-wise right-sizing in action");
}
