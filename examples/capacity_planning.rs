//! Capacity planning: given a tail-latency SLO (2x the isolated p95, as
//! in the paper), how many concurrent instances of each model can one
//! GPU host under KRISP-I? A miniature Table IV for your own deployment,
//! using the library's `plan_capacity` API.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use krisp_suite::core::Policy;
use krisp_suite::models::ModelKind;
use krisp_suite::server::{oracle_perfdb, plan_capacity, CapacityOptions};

fn main() {
    let perfdb = oracle_perfdb(&ModelKind::ALL, &[32]);
    println!(
        "{:<12} {:>12} {:>10} {:>14} {:>12}",
        "model", "iso p95 ms", "SLO ms", "max workers", "rps at max"
    );
    for model in ModelKind::ALL {
        let plan = plan_capacity(model, Policy::KrispI, &perfdb, CapacityOptions::default());
        println!(
            "{:<12} {:>12.1} {:>10.1} {:>14} {:>12.1}",
            model.name(),
            plan.isolated_p95_ms,
            2.0 * plan.isolated_p95_ms,
            plan.max_workers,
            plan.rps_at_max
        );
    }
    println!("\n(KRISP-I right-sizes every kernel and refuses oversubscription, so");
    println!("adding workers degrades gracefully until isolation runs out of CUs.)");
}
