//! Shape tests for the paper's central claims — the cheap, always-on
//! versions of the checks the `krisp-bench` binaries print.

use krisp_suite::core::{select_cus, DistributionPolicy, Policy, KNEE_TOLERANCE};
use krisp_suite::models::{analytic_latency, generate_trace, ModelKind, TraceConfig};
use krisp_suite::runtime::{Runtime, RuntimeConfig};
use krisp_suite::server::{oracle_perfdb, run_server, ServerConfig};
use krisp_suite::sim::{GpuTopology, KernelDesc, SimDuration};

/// Analytic model-wise knee (same definition as the profiler's).
fn analytic_knee(kind: ModelKind) -> u16 {
    let cfg = TraceConfig::default();
    let trace = generate_trace(kind, &cfg);
    let full = analytic_latency(&trace, 60, cfg.launch_overhead).as_nanos() as f64;
    let limit = full * (1.0 + KNEE_TOLERANCE);
    (1..=60)
        .find(|&n| (analytic_latency(&trace, n, cfg.launch_overhead).as_nanos() as f64) <= limit)
        .expect("full device qualifies")
}

#[test]
fn table3_reproduces_for_all_models() {
    for p in krisp_suite::models::PAPER_TABLE3 {
        let trace = generate_trace(p.kind, &TraceConfig::default());
        assert_eq!(trace.len(), p.kernel_count, "{} kernel count", p.kind);
        let knee = analytic_knee(p.kind);
        assert!(
            (knee as i32 - p.right_size_cus as i32).abs() <= 2,
            "{}: knee {knee} vs paper {}",
            p.kind,
            p.right_size_cus
        );
        let lat =
            analytic_latency(&trace, 60, TraceConfig::default().launch_overhead).as_millis_f64();
        assert!(
            (lat - p.p95_ms).abs() / p.p95_ms < 0.02,
            "{}: latency {lat} vs paper {}",
            p.kind,
            p.p95_ms
        );
    }
}

/// Fig 8: the vector-multiply microbenchmark's latency structure under
/// the three distribution policies.
#[test]
fn fig8_spike_structure() {
    let measure = |policy: DistributionPolicy, cus: u16| {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let s = rt.create_stream();
        rt.set_stream_mask(s, select_cus(policy, cus, &rt.topology()))
            .expect("valid mask");
        rt.launch(s, KernelDesc::new("vector_mul_f32", 6.0e6, 60), 0);
        rt.run_to_idle();
        rt.now().as_nanos()
    };
    use DistributionPolicy::*;
    // Packed spikes at 16/31/46: a straggler CU on a fresh SE.
    for n in [16u16, 31, 46] {
        assert!(
            measure(Packed, n) > 3 * measure(Conserved, n),
            "packed spike missing at {n} CUs"
        );
    }
    // Distributed steps at 15/11/7: the first SE to lose a CU.
    for n in [15u16, 11, 7] {
        assert!(
            measure(Distributed, n) > measure(Conserved, n),
            "distributed step missing at {n} CUs"
        );
        assert!(measure(Distributed, n + 1) < measure(Distributed, n));
    }
    // Conserved "avoids both pitfalls and finds a balance": it is never
    // far from the best of the three at any size (at worst a small
    // even-split remainder, e.g. 32 CUs = 11+11+10 -> 30 effective vs
    // Distributed's 8x4 = 32), and never suffers either pathology.
    for n in 1..=60u16 {
        let c = measure(Conserved, n) as f64;
        let best = measure(Packed, n).min(measure(Distributed, n)) as f64;
        assert!(
            c <= best * 1.15,
            "conserved {c} far behind best {best} at {n}"
        );
    }
}

/// Fig 4: albert is a low band with sparse tall spikes; resnext101 is
/// tall-dominated. This is what makes kernel-wise right-sizing pay.
#[test]
fn fig4_phase_structure() {
    let albert = generate_trace(ModelKind::Albert, &TraceConfig::default());
    let small = albert.iter().filter(|k| k.parallelism <= 12).count();
    assert!(small as f64 / albert.len() as f64 > 0.9);

    let resnext = generate_trace(ModelKind::Resnext101, &TraceConfig::default());
    let tall_time: f64 = resnext
        .iter()
        .filter(|k| k.parallelism >= 40)
        .map(|k| k.work / k.parallelism as f64)
        .sum();
    let total: f64 = resnext.iter().map(|k| k.work / k.parallelism as f64).sum();
    assert!(tall_time / total > 0.7);
}

/// The headline co-location claims, on the fast models: KRISP-I
/// out-throughputs MPS Default at 4 workers and cuts energy/inference
/// versus an isolated inference.
#[test]
fn krisp_i_beats_default_sharing_and_saves_energy() {
    let model = ModelKind::Squeezenet;
    let db = oracle_perfdb(&[model], &[32]);
    let quick = |policy: Policy, workers: usize| {
        let mut cfg = ServerConfig::closed_loop(policy, vec![model; workers], 32);
        cfg.warmup = Some(SimDuration::from_millis(40));
        cfg.duration = Some(SimDuration::from_millis(500));
        run_server(&cfg, &db)
    };
    let iso = quick(Policy::MpsDefault, 1);
    let mps4 = quick(Policy::MpsDefault, 4);
    let krisp4 = quick(Policy::KrispI, 4);
    // Throughput: KRISP-I > MPS Default at 4 workers; both beat isolated.
    assert!(krisp4.total_rps() > mps4.total_rps());
    assert!(krisp4.total_rps() > 2.5 * iso.total_rps());
    // Energy per inference: co-location amortizes static power (Fig 13c).
    let e_iso = iso.energy_per_inference().expect("completions");
    let e_krisp = krisp4.energy_per_inference().expect("completions");
    assert!(
        e_krisp < 0.67 * e_iso,
        "energy {e_krisp:.2} J vs isolated {e_iso:.2} J"
    );
}

/// §IV-D3: Algorithm 1 is microsecond-scale in wall-clock time (the
/// paper reports a ~1 us tail). Bounded loosely to stay robust on slow
/// CI machines; the Criterion bench reports the precise figure.
#[test]
fn mask_generation_is_microsecond_scale() {
    use krisp_suite::core::KrispAllocator;
    use krisp_suite::sim::{CuKernelCounters, MaskAllocator};
    let topo = GpuTopology::MI50;
    let mut counters = CuKernelCounters::new(topo);
    let mut alloc = KrispAllocator::isolated();
    // Warm up and load the device.
    for _ in 0..4 {
        let m = alloc.allocate(14, &counters, &topo);
        counters.assign(&m);
    }
    let start = std::time::Instant::now();
    const N: u32 = 10_000;
    for _ in 0..N {
        std::hint::black_box(alloc.allocate(std::hint::black_box(30), &counters, &topo));
    }
    let per_call = start.elapsed() / N;
    assert!(
        per_call < std::time::Duration::from_micros(50),
        "mask generation took {per_call:?} per call"
    );
}

/// The batch-size sweep changes the kernels' profile keys (§V: static
/// traces can't capture this), and smaller batches shrink knees.
#[test]
fn batch_size_changes_profile_keys_and_knees() {
    let t32 = generate_trace(ModelKind::Vgg19, &TraceConfig::default());
    let t8 = generate_trace(ModelKind::Vgg19, &TraceConfig::with_batch(8));
    let keys32: std::collections::HashSet<_> = t32.iter().map(|k| k.profile_key()).collect();
    let keys8: std::collections::HashSet<_> = t8.iter().map(|k| k.profile_key()).collect();
    assert!(keys32.is_disjoint(&keys8), "batch must change profile keys");
    assert!(t8.iter().map(|k| k.parallelism).max() < t32.iter().map(|k| k.parallelism).max());
}

/// Generalizability (§IV-D4): the full pipeline runs on a non-MI50 part.
#[test]
fn pipeline_runs_on_a100_like_topology() {
    let mut cfg = ServerConfig::closed_loop(Policy::KrispI, vec![ModelKind::Squeezenet; 2], 32);
    cfg.topology = GpuTopology::A100_LIKE;
    cfg.warmup = Some(SimDuration::from_millis(30));
    cfg.duration = Some(SimDuration::from_millis(300));
    let db = oracle_perfdb(&[ModelKind::Squeezenet], &[32]);
    let r = run_server(&cfg, &db);
    assert!(r.total_inferences() > 10);
}
