//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;

use krisp_suite::core::{
    knee_from_curve, prior_work_partitions, select_cus, DistributionPolicy, KrispAllocator,
};
use krisp_suite::sim::stats::percentile;
use krisp_suite::sim::{
    contention, CuId, CuKernelCounters, CuMask, Engine, GpuTopology, MaskAllocator, SimDuration,
};

fn mi50() -> GpuTopology {
    GpuTopology::MI50
}

proptest! {
    // ---------- CuMask algebra against a HashSet model ----------

    #[test]
    fn mask_matches_set_model(ids in proptest::collection::vec(0u16..128, 0..40)) {
        let mask: CuMask = ids.iter().map(|&i| CuId(i)).collect();
        let set: std::collections::BTreeSet<u16> = ids.iter().copied().collect();
        prop_assert_eq!(mask.count() as usize, set.len());
        let back: Vec<u16> = mask.iter().map(|c| c.0).collect();
        prop_assert_eq!(back, set.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn mask_union_intersection_laws(
        a in proptest::collection::vec(0u16..128, 0..30),
        b in proptest::collection::vec(0u16..128, 0..30),
    ) {
        let ma: CuMask = a.iter().map(|&i| CuId(i)).collect();
        let mb: CuMask = b.iter().map(|&i| CuId(i)).collect();
        prop_assert_eq!(ma | mb, mb | ma);
        prop_assert_eq!(ma & mb, mb & ma);
        prop_assert!((ma & mb).is_subset_of(&(ma | mb)));
        prop_assert_eq!((ma - mb) & mb, CuMask::EMPTY);
        prop_assert_eq!((ma - mb) | (ma & mb), ma);
        // Round-trip through raw words.
        prop_assert_eq!(CuMask::from_raw_words(ma.raw_words()), ma);
    }

    // ---------- Algorithm 1 ----------

    #[test]
    fn algorithm1_respects_request_and_device(
        request in 0u16..=80,
        limit in 0u16..=60,
        busy in proptest::collection::vec(0u16..60, 0..60),
    ) {
        let topo = mi50();
        let mut counters = CuKernelCounters::new(topo);
        let busy_mask: CuMask = busy.iter().map(|&i| CuId(i)).collect();
        counters.assign(&busy_mask);
        let mut alloc = KrispAllocator::new(limit);
        let mask = alloc.allocate(request, &counters, &topo);
        // Never empty, never beyond the device, never more than requested.
        prop_assert!(!mask.is_empty());
        prop_assert!(mask.count() <= request.clamp(1, 60));
        prop_assert!(mask.is_subset_of(&CuMask::full(&topo)));
        // Overlap limit: at most max(limit, 1) busy CUs are shared (the
        // fallback may grant a single busy CU on a saturated device).
        let shared = mask.iter().filter(|&cu| counters.get(cu) > 0).count() as u16;
        prop_assert!(shared <= limit.max(1), "shared {} > limit {}", shared, limit);
        // Determinism.
        let again = KrispAllocator::new(limit).allocate(request, &counters, &topo);
        prop_assert_eq!(mask, again);
    }

    #[test]
    fn algorithm1_idle_device_grants_in_full_on_fewest_ses(request in 1u16..=60) {
        let topo = mi50();
        let counters = CuKernelCounters::new(topo);
        let mask = KrispAllocator::isolated().allocate(request, &counters, &topo);
        prop_assert_eq!(mask.count(), request);
        // Conserved sizing: fewest SEs, at most ceil(request/num_se) CUs
        // per SE. (The pseudocode concentrates any shortfall on the last
        // selected SE — e.g. 49 CUs lands as 13+13+13+10 — which is the
        // algorithm-induced imbalance the paper's Fig 16 discussion
        // mentions, so we assert the faithful contract, not +-1 balance.)
        let num_se = request.div_ceil(15);
        let per_se = request.div_ceil(num_se);
        let used: Vec<u16> = topo
            .ses()
            .map(|se| mask.count_in_se(&topo, se))
            .filter(|&c| c > 0)
            .collect();
        prop_assert_eq!(used.len() as u16, num_se);
        prop_assert!(used.iter().all(|&c| c <= per_se));
    }

    // ---------- Distribution policies ----------

    #[test]
    fn every_distribution_selects_exactly_n(n in 1u16..=60) {
        for policy in DistributionPolicy::ALL {
            prop_assert_eq!(select_cus(policy, n, &mi50()).count(), n);
        }
    }

    #[test]
    fn prior_work_partitions_disjoint_when_fitting(
        sizes in proptest::collection::vec(1u16..=20, 1..4),
    ) {
        prop_assume!(sizes.iter().sum::<u16>() <= 60);
        let masks = prior_work_partitions(&sizes, &mi50());
        for (i, m) in masks.iter().enumerate() {
            prop_assert_eq!(m.count(), sizes[i]);
            for other in &masks[i + 1..] {
                prop_assert!(!m.intersects(other));
            }
        }
    }

    // ---------- Execution model ----------

    #[test]
    fn kernel_rate_bounded_by_parallelism_and_floor(
        mask_cus in proptest::collection::vec(0u16..60, 1..60),
        parallelism in 1u16..=60,
        floor in 0.0f64..=1.0,
        residents_extra in 0u16..3,
    ) {
        let topo = mi50();
        let mask: CuMask = mask_cus.iter().map(|&i| CuId(i)).collect();
        let mut residents = vec![residents_extra; 60];
        for cu in &mask {
            residents[usize::from(cu)] += 1;
        }
        let rate = contention::kernel_rate(&mask, parallelism, floor, &residents, &topo, 0.35);
        prop_assert!(rate > 0.0);
        prop_assert!(rate <= parallelism as f64 + 1e-9);
        prop_assert!(rate + 1e-9 >= (floor * parallelism as f64).min(parallelism as f64));
    }

    #[test]
    fn adding_a_co_runner_never_speeds_you_up(
        parallelism in 1u16..=60,
        n in 1u16..=60,
    ) {
        let topo = mi50();
        let mask = select_cus(DistributionPolicy::Conserved, n, &topo);
        let mut solo = vec![0u16; 60];
        for cu in &mask {
            solo[usize::from(cu)] = 1;
        }
        let mut shared = solo.clone();
        for cu in &mask {
            shared[usize::from(cu)] += 1;
        }
        let r_solo = contention::kernel_rate(&mask, parallelism, 0.0, &solo, &topo, 0.35);
        let r_shared = contention::kernel_rate(&mask, parallelism, 0.0, &shared, &topo, 0.35);
        prop_assert!(r_shared <= r_solo + 1e-9);
    }

    #[test]
    fn engine_conserves_work(
        works in proptest::collection::vec(1.0e5f64..5.0e6, 1..5),
    ) {
        // Total busy time x rate must equal total injected work when
        // kernels run alone back-to-back.
        let topo = mi50();
        let mut engine = Engine::with_sharing_penalty(topo, 0.0);
        let mask = CuMask::full(&topo);
        let mut now = krisp_suite::sim::SimTime::ZERO;
        let mut total_expected = SimDuration::ZERO;
        for w in &works {
            let id = engine.dispatch(*w, 60, 0.0, mask).unwrap();
            let (t, done) = engine.next_completion(now).unwrap();
            prop_assert_eq!(done, id);
            engine.advance(t.saturating_since(now));
            engine.complete(id);
            total_expected += SimDuration::from_nanos((w / 60.0).ceil() as u64);
            now = t;
        }
        let drift = (now.as_nanos() as i64
            - (krisp_suite::sim::SimTime::ZERO + total_expected).as_nanos() as i64)
            .abs();
        prop_assert!(drift <= works.len() as i64); // rounding only
    }

    // ---------- Knee detection ----------

    #[test]
    fn knee_is_minimal_and_within_tolerance(
        mut lats in proptest::collection::vec(1u64..1_000_000, 2..61),
        tol in 0.0f64..0.5,
    ) {
        // Force a non-increasing curve.
        lats.sort_unstable_by(|a, b| b.cmp(a));
        let curve: Vec<(u16, SimDuration)> = lats
            .iter()
            .enumerate()
            .map(|(i, &l)| (i as u16 + 1, SimDuration::from_nanos(l)))
            .collect();
        let knee = knee_from_curve(&curve, tol);
        let full = curve.last().unwrap().1.as_nanos() as f64;
        let limit = full * (1.0 + tol);
        let at = |cus: u16| curve.iter().find(|&&(c, _)| c == cus).unwrap().1.as_nanos() as f64;
        prop_assert!(at(knee) <= limit);
        for &(c, l) in &curve {
            if c < knee {
                prop_assert!(l.as_nanos() as f64 > limit);
            }
        }
    }

    // ---------- Statistics ----------

    #[test]
    fn percentile_bounded_and_monotone(
        xs in proptest::collection::vec(-1.0e6f64..1.0e6, 1..50),
        p1 in 0.0f64..=100.0,
        p2 in 0.0f64..=100.0,
    ) {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v1 = percentile(&xs, p1).unwrap();
        prop_assert!(v1 >= min && v1 <= max);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo).unwrap() <= percentile(&xs, hi).unwrap());
    }

    // ---------- Resource monitor ----------

    #[test]
    fn counters_assign_release_inverse(
        masks in proptest::collection::vec(
            proptest::collection::vec(0u16..60, 0..30),
            0..8,
        ),
    ) {
        let mut counters = CuKernelCounters::new(mi50());
        let cumasks: Vec<CuMask> = masks
            .iter()
            .map(|m| m.iter().map(|&i| CuId(i)).collect())
            .collect();
        for m in &cumasks {
            counters.assign(m);
        }
        for m in &cumasks {
            counters.release(m);
        }
        prop_assert_eq!(counters.total(), 0);
    }
}
