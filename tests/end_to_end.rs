//! Integration tests spanning the whole stack: profiler → Required-CUs
//! table → runtime interception → packet processor → inference server.

use krisp_suite::core::{KrispAllocator, Policy, Profiler};
use krisp_suite::models::{generate_trace, ModelKind, TraceConfig};
use krisp_suite::runtime::{
    EmulationCosts, PartitionMode, RequiredCusTable, RtEvent, Runtime, RuntimeConfig,
};
use krisp_suite::server::{oracle_perfdb, run_server, Arrival, ServerConfig};
use krisp_suite::sim::{KernelDesc, SimDuration};

fn quick_cfg(policy: Policy, models: Vec<ModelKind>) -> ServerConfig {
    let mut cfg = ServerConfig::closed_loop(policy, models, 32);
    cfg.warmup = Some(SimDuration::from_millis(40));
    cfg.duration = Some(SimDuration::from_millis(400));
    cfg
}

#[test]
fn profile_persist_load_serve_pipeline() {
    // 1. Profile a small model with the real measurement sweep.
    let profiler = Profiler::default();
    let db = profiler.build_perfdb(&[ModelKind::Squeezenet], &[32]);
    assert!(!db.is_empty());

    // 2. Persist and reload, as a library perf database would be.
    let path = std::env::temp_dir().join("krisp_e2e_perfdb.json");
    db.save(&path).expect("save perfdb");
    let db = RequiredCusTable::load(&path).expect("load perfdb");
    let _ = std::fs::remove_file(&path);

    // 3. Serve with KRISP-I using the measured table.
    let r = run_server(
        &quick_cfg(Policy::KrispI, vec![ModelKind::Squeezenet; 2]),
        &db,
    );
    assert!(r.total_inferences() > 20);
    let p95 = r.max_p95_ms().expect("completions");
    // Two right-sized squeezenets barely interfere: near-isolated p95.
    assert!(p95 < 2.0 * 8.0, "p95 {p95} ms");
}

#[test]
fn measured_profile_tracks_ground_truth_knees() {
    let profiler = Profiler::default();
    let db = profiler.build_perfdb(&[ModelKind::Alexnet], &[32]);
    for k in generate_trace(ModelKind::Alexnet, &TraceConfig::default()) {
        let measured = db.lookup(&k).expect("profiled") as i32;
        let truth = k.parallelism as i32;
        assert!(
            (measured - truth).abs() <= truth / 2 + 3,
            "{}: measured {measured} vs knee {truth}",
            k.name
        );
    }
}

#[test]
fn krisp_i_masks_never_overlap_across_streams() {
    let mut config = RuntimeConfig {
        mode: PartitionMode::KernelScopedNative,
        allocator: Box::new(KrispAllocator::isolated()),
        ..RuntimeConfig::default()
    };
    let ka = KernelDesc::new("a", 5.0e6, 25).with_grid_threads(1);
    let kb = KernelDesc::new("b", 5.0e6, 25).with_grid_threads(2);
    let perfdb = std::sync::Arc::make_mut(&mut config.perfdb);
    perfdb.insert(&ka, 25);
    perfdb.insert(&kb, 25);
    let mut rt = Runtime::new(config);
    let sa = rt.create_stream();
    let sb = rt.create_stream();
    for i in 0..10 {
        rt.launch(sa, ka.clone(), i);
        rt.launch(sb, kb.clone(), i);
    }
    let mut running: Vec<(u32, krisp_suite::sim::CuMask)> = Vec::new();
    while let Some(ev) = rt.step() {
        match ev {
            RtEvent::KernelStarted { stream, mask, .. } => {
                for (other, m) in &running {
                    assert!(
                        *other == stream.0 || !m.intersects(&mask),
                        "isolated kernels share CUs"
                    );
                }
                running.retain(|(s, _)| *s != stream.0);
                running.push((stream.0, mask));
            }
            RtEvent::KernelCompleted { stream, .. } => {
                running.retain(|(s, _)| *s != stream.0);
            }
            _ => {}
        }
    }
}

#[test]
fn emulation_overhead_accounting_identity() {
    // L_over == per-kernel emulation cost x kernel count, measured the
    // way the paper measures it (baseline vs emulated-with-full-masks).
    let costs = EmulationCosts::default();
    let empty = RequiredCusTable::new();
    let one_pass = |mode: PartitionMode| {
        let mut rt = Runtime::new(RuntimeConfig {
            mode,
            jitter_sigma: 0.0,
            ..RuntimeConfig::default()
        });
        let s = rt.create_stream();
        let trace = generate_trace(ModelKind::Squeezenet, &TraceConfig::default());
        for (i, k) in trace.iter().enumerate() {
            rt.launch(s, k.clone(), i as u64);
        }
        rt.run_to_idle();
        (rt.now(), trace.len())
    };
    let _ = &empty;
    let (real, kernels) = one_pass(PartitionMode::StreamMasking);
    let (emu, _) = one_pass(PartitionMode::KernelScopedEmulated(costs));
    assert_eq!(
        emu.saturating_since(real),
        costs.per_kernel() * kernels as u64
    );
}

#[test]
fn native_krisp_is_cheaper_than_emulated_krisp() {
    let db = oracle_perfdb(&[ModelKind::Squeezenet], &[32]);
    let run = |mode: PartitionMode| {
        let mut rt = Runtime::new(RuntimeConfig {
            mode,
            allocator: Box::new(KrispAllocator::isolated()),
            perfdb: std::sync::Arc::new(db.clone()),
            jitter_sigma: 0.0,
            ..RuntimeConfig::default()
        });
        let s = rt.create_stream();
        for (i, k) in generate_trace(ModelKind::Squeezenet, &TraceConfig::default())
            .iter()
            .enumerate()
        {
            rt.launch(s, k.clone(), i as u64);
        }
        rt.run_to_idle();
        rt.now()
    };
    let native = run(PartitionMode::KernelScopedNative);
    let emulated = run(PartitionMode::KernelScopedEmulated(
        EmulationCosts::default(),
    ));
    assert!(native < emulated);
}

#[test]
fn every_policy_serves_a_mixed_pair() {
    let models = vec![ModelKind::Albert, ModelKind::Squeezenet];
    let db = oracle_perfdb(&models, &[32]);
    for policy in Policy::ALL {
        let r = run_server(&quick_cfg(policy, models.clone()), &db);
        assert!(
            r.workers.iter().all(|w| w.inferences() > 0),
            "{policy}: a worker starved"
        );
        assert!(r.energy_per_inference().expect("completions") > 0.0);
    }
}

#[test]
fn open_loop_latency_degrades_towards_saturation() {
    let db = oracle_perfdb(&[ModelKind::Squeezenet], &[32]);
    let run_at = |rate: f64| {
        let mut cfg = quick_cfg(Policy::MpsDefault, vec![ModelKind::Squeezenet]);
        cfg.arrival = Arrival::Poisson {
            rps_per_worker: rate,
        };
        cfg.duration = Some(SimDuration::from_secs(2));
        run_server(&cfg, &db).max_p95_ms().expect("completions")
    };
    let light = run_at(20.0);
    let heavy = run_at(110.0); // capacity is ~125 rps
    assert!(heavy > light, "queueing should inflate tail latency");
}

#[test]
fn fig16_limit_endpoints_match_krisp_variants() {
    // overlap limit 0 == KRISP-I and limit 60 == KRISP-O by construction.
    let models = vec![ModelKind::Squeezenet; 2];
    let db = oracle_perfdb(&models, &[32]);
    let mut as_i = quick_cfg(Policy::KrispI, models.clone());
    as_i.overlap_limit = Some(0);
    let mut as_o = quick_cfg(Policy::KrispO, models.clone());
    as_o.overlap_limit = Some(60);
    let i_ref = run_server(&quick_cfg(Policy::KrispI, models.clone()), &db);
    let o_ref = run_server(&quick_cfg(Policy::KrispO, models), &db);
    assert_eq!(
        run_server(&as_i, &db).total_inferences(),
        i_ref.total_inferences()
    );
    assert_eq!(
        run_server(&as_o, &db).total_inferences(),
        o_ref.total_inferences()
    );
}
